package plan

import (
	"fmt"
	"math/rand"
	"testing"

	"spq/internal/data"
	"spq/internal/geo"
	"spq/internal/grid"
	"spq/internal/text"
)

// buildManifest seals a synthetic two-cluster dataset in memory: cluster A
// around (0.2, 0.2) with keyword vocabulary "a*", cluster B around
// (0.8, 0.8) with vocabulary "b*".
func buildManifest(t *testing.T, sealN int) *data.Manifest {
	t.Helper()
	dict := text.NewDict()
	r := rand.New(rand.NewSource(3))
	var objs []data.Object
	id := uint64(0)
	add := func(cx, cy float64, vocab string) {
		for i := 0; i < 200; i++ {
			id++
			loc := geo.Point{X: cx + r.Float64()*0.1 - 0.05, Y: cy + r.Float64()*0.1 - 0.05}
			if i%2 == 0 {
				objs = append(objs, data.Object{Kind: data.DataObject, ID: id, Loc: loc})
			} else {
				objs = append(objs, data.Object{
					Kind:     data.FeatureObject,
					ID:       id,
					Loc:      loc,
					Keywords: dict.InternAll([]string{fmt.Sprintf("%s%d", vocab, r.Intn(10))}),
				})
			}
		}
	}
	add(0.2, 0.2, "a")
	add(0.8, 0.8, "b")
	g := grid.New(geo.Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}, sealN, sealN)
	m, _ := data.PartitionObjects(g, objs).SealMemory("t", dict)
	return m
}

func records(cells []data.CellStats) int64 {
	var n int64
	for _, c := range cells {
		n += int64(c.Records)
	}
	return n
}

func TestPlanKeywordAndDistancePruning(t *testing.T) {
	m := buildManifest(t, 16)
	// A query for an "a"-cluster keyword with a small radius must drop
	// every "b"-cluster cell: its feature cells by keyword disjointness,
	// its data cells because no surviving feature cell is in range.
	d := Plan(m, Input{Radius: 0.02, Keywords: []string{"a3"}, ReduceSlots: 4})
	if d.Empty() {
		t.Fatal("plan empty for a matching query")
	}
	if d.Stats.RecordsSelected >= d.Stats.RecordsTotal/2+int64(len(m.Data)) {
		t.Errorf("selected %d of %d records; cluster B not pruned",
			d.Stats.RecordsSelected, d.Stats.RecordsTotal)
	}
	for _, cs := range d.Data {
		if cs.Bounds.MinX > 0.5 {
			t.Errorf("data cell %d from cluster B survived", cs.Cell)
		}
	}
	for _, cs := range d.Features {
		if !cs.Keywords.MayContain("a3") {
			t.Errorf("feature cell %d without the query keyword survived", cs.Cell)
		}
	}
	if got := records(d.Data) + records(d.Features); got != d.Stats.RecordsSelected {
		t.Errorf("RecordsSelected = %d, cells sum to %d", d.Stats.RecordsSelected, got)
	}
	if len(d.Files) != len(d.Data)+len(d.Features) {
		t.Errorf("Files = %d entries, want %d", len(d.Files), len(d.Data)+len(d.Features))
	}
	c := d.Counters()
	if c[CounterRecordsSkipped] != d.Stats.RecordsTotal-d.Stats.RecordsSelected {
		t.Errorf("records-skipped counter = %d", c[CounterRecordsSkipped])
	}
}

func TestPlanUnknownKeywordIsProvablyEmpty(t *testing.T) {
	m := buildManifest(t, 16)
	d := Plan(m, Input{Radius: 0.1, Keywords: []string{"no-such-word-xyzzy"}})
	if !d.Empty() {
		t.Errorf("plan for an out-of-vocabulary keyword kept %d data / %d feature cells",
			len(d.Data), len(d.Features))
	}
}

func TestPlanLargeRadiusKeepsEverythingRelevant(t *testing.T) {
	m := buildManifest(t, 16)
	// Radius spanning the whole space: distance pruning must keep every
	// data cell; keyword pruning still drops cluster B's feature cells.
	d := Plan(m, Input{Radius: 2, Keywords: []string{"a1"}})
	if len(d.Data) != len(m.Data) {
		t.Errorf("kept %d of %d data cells under a space-covering radius", len(d.Data), len(m.Data))
	}
	if len(d.Features) >= len(m.Features) {
		t.Errorf("no feature cell pruned despite disjoint vocabulary")
	}
}

// buildDelta computes delta cell sets for a cluster around (cx, cy) with
// the given keyword vocabulary, partitioned over the manifest's seal grid
// exactly as the engine's delta view does.
func buildDelta(m *data.Manifest, cx, cy float64, vocab string, n int) (dataCells, featureCells []data.CellStats) {
	dict := text.NewDict()
	r := rand.New(rand.NewSource(9))
	var objs []data.Object
	for i := 0; i < n; i++ {
		loc := geo.Point{X: cx + r.Float64()*0.1 - 0.05, Y: cy + r.Float64()*0.1 - 0.05}
		if i%2 == 0 {
			objs = append(objs, data.Object{Kind: data.DataObject, ID: uint64(10000 + i), Loc: loc})
		} else {
			objs = append(objs, data.Object{
				Kind:     data.FeatureObject,
				ID:       uint64(10000 + i),
				Loc:      loc,
				Keywords: dict.InternAll([]string{fmt.Sprintf("%s%d", vocab, r.Intn(10))}),
			})
		}
	}
	dataCells, featureCells, _ = data.PartitionObjects(m.Grid.Grid(), objs).CellView("delta", dict)
	return dataCells, featureCells
}

func TestPlanGenerationsJointPruning(t *testing.T) {
	m := buildManifest(t, 16)
	// Delta cluster around (0.5, 0.5) with its own vocabulary "c*".
	dd, df := buildDelta(m, 0.5, 0.5, "c", 200)

	// A "c"-keyword query prunes every base feature cell by keyword
	// disjointness but keeps the delta: surviving cells must be delta-only
	// features plus the data cells (base or delta) they can reach.
	d := PlanGenerations(m, dd, df, Input{Radius: 0.02, Keywords: []string{"c4"}, ReduceSlots: 4})
	if d.Empty() {
		t.Fatal("plan empty despite matching delta cells")
	}
	if len(d.Features) != 0 {
		t.Errorf("%d base feature cells survived a delta-only keyword", len(d.Features))
	}
	if len(d.DeltaFeatures) == 0 {
		t.Error("no delta feature cell survived its own keyword")
	}
	if d.Stats.DeltaCells != len(dd)+len(df) {
		t.Errorf("DeltaCells = %d, want %d", d.Stats.DeltaCells, len(dd)+len(df))
	}
	if d.Stats.DeltaRecords != records(dd)+records(df) {
		t.Errorf("DeltaRecords = %d, want %d", d.Stats.DeltaRecords, records(dd)+records(df))
	}
	if got := records(d.DeltaData) + records(d.DeltaFeatures); got != d.Stats.DeltaRecordsSelected {
		t.Errorf("DeltaRecordsSelected = %d, delta cells sum to %d", d.Stats.DeltaRecordsSelected, got)
	}
	if got := records(d.Data) + records(d.Features) + d.Stats.DeltaRecordsSelected; got != d.Stats.RecordsSelected {
		t.Errorf("RecordsSelected = %d, survivors sum to %d", d.Stats.RecordsSelected, got)
	}
	// Delta cells never appear in the sealed file list.
	for _, f := range d.Files {
		for _, cs := range append(dd, df...) {
			if f == cs.File {
				t.Errorf("delta cell %s leaked into Files", f)
			}
		}
	}

	// An "a"-keyword query with a small radius keeps cluster A and prunes
	// the whole delta — base data cells must not be kept alive by
	// unreachable delta features.
	d = PlanGenerations(m, dd, df, Input{Radius: 0.02, Keywords: []string{"a3"}, ReduceSlots: 4})
	if len(d.DeltaFeatures) != 0 {
		t.Errorf("%d delta feature cells survived keyword 'a3'", len(d.DeltaFeatures))
	}
	if len(d.DeltaData) != 0 {
		t.Errorf("%d delta data cells survived with no reachable feature", len(d.DeltaData))
	}
	if d.Stats.DeltaCellsPruned != d.Stats.DeltaCells {
		t.Errorf("DeltaCellsPruned = %d, want all %d", d.Stats.DeltaCellsPruned, d.Stats.DeltaCells)
	}

	// Cross-generation reachability: a radius large enough to span the
	// space keeps base data cells alive through delta features alone.
	d = PlanGenerations(m, dd, df, Input{Radius: 2, Keywords: []string{"c1"}})
	if len(d.Data) != len(m.Data) {
		t.Errorf("kept %d of %d base data cells; delta features should reach all", len(d.Data), len(m.Data))
	}
	if d.Empty() {
		t.Error("plan empty despite space-covering radius and matching delta keyword")
	}
}

func TestPlanGenerationsEmptyAcrossBothSets(t *testing.T) {
	m := buildManifest(t, 16)
	dd, df := buildDelta(m, 0.5, 0.5, "c", 50)
	// A keyword in neither generation's vocabulary proves emptiness even
	// with delta cells present.
	d := PlanGenerations(m, dd, df, Input{Radius: 0.1, Keywords: []string{"no-such-word-xyzzy"}})
	if !d.Empty() {
		t.Errorf("plan kept %d+%d data / %d+%d feature cells for an unknown keyword",
			len(d.Data), len(d.DeltaData), len(d.Features), len(d.DeltaFeatures))
	}
}

func TestPlanRespectsOverrides(t *testing.T) {
	m := buildManifest(t, 8)
	d := Plan(m, Input{Radius: 0.05, Keywords: []string{"a1", "b1"}, GridN: 7, NumReducers: 3})
	if d.GridN != 7 || d.NumReducers != 3 {
		t.Errorf("overrides ignored: gridN=%d reducers=%d", d.GridN, d.NumReducers)
	}
}

func TestChooseGridN(t *testing.T) {
	cases := []struct {
		records int64
		want    int
	}{
		{0, minGridN},
		{100, minGridN},
		{10000, 13},
		{100000, 40},
		{100000000, maxGridN},
	}
	for _, c := range cases {
		if got := chooseGridN(c.records); got != c.want {
			t.Errorf("chooseGridN(%d) = %d, want %d", c.records, got, c.want)
		}
	}
}

func TestChooseReducers(t *testing.T) {
	if got := chooseReducers(4, 8); got != 16 {
		t.Errorf("small grid: reducers = %d, want 16 (one per cell)", got)
	}
	if got := chooseReducers(50, 8); got != 32 {
		t.Errorf("large grid: reducers = %d, want 32 (4x slots)", got)
	}
	if got := chooseReducers(50, 0); got != 2500 {
		t.Errorf("no slot info: reducers = %d, want 2500", got)
	}
}

// buildColumnarManifest seals the same two-cluster corpus as SPQ2 columnar
// segments with tiny blocks, so cells split into many prunable units.
func buildColumnarManifest(t *testing.T, sealN, blockRecords int) *data.Manifest {
	t.Helper()
	dict := text.NewDict()
	r := rand.New(rand.NewSource(3))
	var objs []data.Object
	id := uint64(0)
	add := func(cx, cy float64, vocab string) {
		for i := 0; i < 200; i++ {
			id++
			loc := geo.Point{X: cx + r.Float64()*0.1 - 0.05, Y: cy + r.Float64()*0.1 - 0.05}
			if i%2 == 0 {
				objs = append(objs, data.Object{Kind: data.DataObject, ID: id, Loc: loc})
			} else {
				objs = append(objs, data.Object{
					Kind:     data.FeatureObject,
					ID:       id,
					Loc:      loc,
					Keywords: dict.InternAll([]string{fmt.Sprintf("%s%d", vocab, r.Intn(10))}),
				})
			}
		}
	}
	add(0.2, 0.2, "a")
	add(0.8, 0.8, "b")
	g := grid.New(geo.Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}, sealN, sealN)
	m, err := data.PartitionObjects(g, objs).SealSegments(data.MemSegStore{}, "t", dict, blockRecords, data.FormatColumnar)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestPlanBlockGranularity: with block zone maps present, pruning refines
// below the cell — a selective query keeps cells but drops blocks inside
// them, and the block counters reconcile with the record selection.
func TestPlanBlockGranularity(t *testing.T) {
	// A coarse seal grid (2x2) with 8-record blocks: each cluster lands in
	// one cell of ~200 records split into ~25 blocks with tight bounds and
	// per-block blooms.
	m := buildColumnarManifest(t, 2, 8)
	d := Plan(m, Input{Radius: 0.01, Keywords: []string{"a3"}, ReduceSlots: 4})
	if d.Empty() {
		t.Fatal("plan pruned everything for an in-vocabulary keyword")
	}
	if d.Stats.Blocks == 0 {
		t.Fatal("no block zone maps considered")
	}
	if d.Stats.BlocksPruned == 0 {
		t.Error("selective query pruned no blocks")
	}
	// Blocks of the "b" cluster must all be gone: keyword-disjoint feature
	// blocks, unreachable data blocks.
	for file, blocks := range d.Blocks {
		if len(blocks) == 0 {
			t.Errorf("surviving cell %s has an empty block selection", file)
		}
	}
	// Selected records must equal the records of surviving blocks exactly.
	var got int64
	lookup := make(map[string]data.CellStats)
	for _, cs := range append(append([]data.CellStats(nil), m.Data...), m.Features...) {
		lookup[cs.File] = cs
	}
	for _, cs := range append(append([]data.CellStats(nil), d.Data...), d.Features...) {
		sel, ok := d.Blocks[cs.File]
		if !ok {
			t.Fatalf("surviving columnar cell %s has no block selection", cs.File)
		}
		for _, bi := range sel {
			got += int64(lookup[cs.File].Blocks[bi].Records)
		}
	}
	if got != d.Stats.RecordsSelected {
		t.Errorf("surviving blocks hold %d records, Stats.RecordsSelected = %d", got, d.Stats.RecordsSelected)
	}
	// Block pruning must be at least as sharp as cell pruning: re-plan the
	// same corpus without block metadata and compare the records read.
	coarse := Plan(buildManifest(t, 2), Input{Radius: 0.01, Keywords: []string{"a3"}, ReduceSlots: 4})
	if d.Stats.RecordsSelected > coarse.Stats.RecordsSelected {
		t.Errorf("block-level selection (%d records) coarser than cell-level (%d)",
			d.Stats.RecordsSelected, coarse.Stats.RecordsSelected)
	}
	// Counters reconcile.
	c := d.Counters()
	if c[CounterBlocksScanned]+c[CounterBlocksPruned] != int64(d.Stats.Blocks) {
		t.Errorf("block counters %d+%d do not sum to %d blocks",
			c[CounterBlocksScanned], c[CounterBlocksPruned], d.Stats.Blocks)
	}
}

// TestPlanBlockCountersZeroWithoutZoneMaps: cell-granular storage reports
// no block activity.
func TestPlanBlockCountersZeroWithoutZoneMaps(t *testing.T) {
	m := buildManifest(t, 8)
	d := Plan(m, Input{Radius: 0.05, Keywords: []string{"a1"}})
	if d.Stats.Blocks != 0 || d.Stats.BlocksPruned != 0 {
		t.Errorf("cell-granular manifest reported blocks: %+v", d.Stats)
	}
	if len(d.Blocks) != 0 {
		t.Errorf("cell-granular manifest produced block selections: %v", d.Blocks)
	}
}
