package spq

import (
	"fmt"
	"sort"

	"spq/internal/data"
)

// LoadSynthetic populates the engine with one of the paper's four
// experimental dataset families, scaled to n total objects (half data,
// half feature objects, as in Section 7.1):
//
//	"uniform"   — UN: uniform locations, 10–100 keywords per feature from
//	              a 1,000-word vocabulary
//	"clustered" — CL: 16 random Gaussian clusters, keywords as UN
//	"flickr"    — FL surrogate: hotspot-skewed locations, mean 7.9
//	              keywords, 34,716-word Zipfian vocabulary
//	"twitter"   — TW surrogate: hotspot-skewed locations, mean 9.8
//	              keywords, 88,706-word Zipfian vocabulary
//
// The real Flickr/Twitter dumps used by the paper are not redistributable;
// see DESIGN.md for the substitution rationale.
func (e *Engine) LoadSynthetic(dataset string, n int) error {
	var spec data.Spec
	switch dataset {
	case "uniform":
		spec = data.UniformSpec(n)
	case "clustered":
		spec = data.ClusteredSpec(n)
	case "flickr":
		spec = data.FlickrSpec(n)
	case "twitter":
		spec = data.TwitterSpec(n)
	default:
		return fmt.Errorf("spq: unknown synthetic dataset %q (want uniform, clustered, flickr or twitter)", dataset)
	}
	ds := data.Generate(spec)

	e.mu.Lock()
	defer e.mu.Unlock()
	// Generated objects pass the same load-time validation as user input
	// (finite coordinates, unique ids per dataset) — so loading the same
	// synthetic family twice into one engine fails on the duplicate ids
	// instead of silently corrupting top-k results.
	for _, o := range ds.Data {
		if err := e.checkLocked(o.Kind, o.ID, o.Loc.X, o.Loc.Y, nil); err != nil {
			return err
		}
	}
	for _, f := range ds.Features {
		if err := e.checkLocked(f.Kind, f.ID, f.Loc.X, f.Loc.Y, nil); err != nil {
			return err
		}
	}
	for _, o := range ds.Data {
		e.addLocked(o)
	}
	for _, f := range ds.Features {
		// Re-intern keywords into the engine's dictionary so user-supplied
		// features and query keywords share the id space.
		f.Keywords = e.dict.InternAll(ds.Dict.Words(f.Keywords))
		e.addLocked(f)
	}
	return e.commitLocked()
}

// FrequentKeywords returns up to n of the most frequently used feature
// keywords, most frequent first. Useful for building queries guaranteed to
// match data, especially on the Zipfian synthetic datasets.
func (e *Engine) FrequentKeywords(n int) []string {
	e.mu.Lock()
	defer e.mu.Unlock()
	freq := make(map[uint32]int)
	for _, o := range e.allObjectsLocked() {
		if o.Kind != data.FeatureObject {
			continue
		}
		for _, kw := range o.Keywords {
			freq[kw]++
		}
	}
	type wc struct {
		id uint32
		n  int
	}
	all := make([]wc, 0, len(freq))
	for id, c := range freq {
		all = append(all, wc{id, c})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].n != all[j].n {
			return all[i].n > all[j].n
		}
		return all[i].id < all[j].id
	})
	if n > len(all) {
		n = len(all)
	}
	out := make([]string, n)
	for i := 0; i < n; i++ {
		out[i] = e.dict.Word(all[i].id)
	}
	return out
}
