// Tweets: ranking locations by the relevance of nearby geotagged posts.
//
// This is the paper's second motivating workload: the feature objects are
// tweets (here the built-in Twitter surrogate dataset: hotspot-skewed
// locations, Zipfian keyword frequencies), and the data objects are
// candidate locations ranked by the best-matching tweet within the query
// radius. The example runs the default algorithm (eSPQsco) end to end over
// the simulated HDFS + MapReduce stack and prints the job's execution
// profile, including duplication and early-termination counters.
//
//	go run ./examples/tweets
package main

import (
	"fmt"
	"log"
	"sort"
	"strings"

	"spq"
)

func main() {
	eng := spq.NewEngine(spq.Config{
		Nodes:       16, // the paper's cluster size
		MapSlots:    8,
		ReduceSlots: 8,
	})
	fmt.Println("loading 40,000 synthetic tweets + candidate locations...")
	if err := eng.LoadSynthetic("twitter", 40000); err != nil {
		log.Fatal(err)
	}

	// Query the three most tweeted-about topics.
	topics := eng.FrequentKeywords(3)
	fmt.Printf("querying hottest topics: %s\n\n", strings.Join(topics, ", "))

	rep, err := eng.QueryReport(
		spq.Query{K: 10, Radius: 0.002, Keywords: topics},
		spq.WithGrid(32),
	)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("top-%d locations (algorithm %s, %.1f ms):\n", len(rep.Results), rep.Algorithm, rep.TotalMillis)
	for i, r := range rep.Results {
		fmt.Printf("%2d. location %-6d score %.3f at (%.4f, %.4f)\n", i+1, r.ID, r.Score, r.X, r.Y)
	}

	fmt.Println("\njob profile:")
	names := make([]string, 0, len(rep.Counters))
	for n := range rep.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Printf("  %-35s %d\n", n, rep.Counters[n])
	}
}
