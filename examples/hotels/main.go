// Hotels: a city-scale hotel finder comparing all three algorithms.
//
// The example synthesizes a city of 4,000 hotels and 4,000 restaurants
// spread over clustered neighborhoods (restaurants carry cuisine and
// amenity keywords), then answers the motivating query of the paper's
// introduction — "find the best hotels that have a highly relevant
// restaurant nearby" — with each algorithm, showing that all three return
// the same ranking while examining very different amounts of data.
//
//	go run ./examples/hotels
package main

import (
	"fmt"
	"log"
	"math/rand"

	"spq"
)

var cuisines = []string{
	"italian", "chinese", "mexican", "greek", "indian", "sushi", "thai",
	"french", "bbq", "vegan", "seafood", "burgers", "tapas", "ramen",
}

var amenities = []string{
	"romantic", "cheap", "gourmet", "terrace", "wine", "cocktails",
	"family", "late", "brunch", "rooftop",
}

func main() {
	r := rand.New(rand.NewSource(7))
	eng := spq.NewEngine(spq.Config{})

	// Neighborhood centers of the synthetic city (10km x 10km).
	type hood struct{ x, y float64 }
	hoods := make([]hood, 12)
	for i := range hoods {
		hoods[i] = hood{r.Float64() * 10, r.Float64() * 10}
	}
	sample := func() (float64, float64) {
		h := hoods[r.Intn(len(hoods))]
		return clamp(h.x+r.NormFloat64()*0.6, 0, 10), clamp(h.y+r.NormFloat64()*0.6, 0, 10)
	}

	for i := 0; i < 4000; i++ {
		x, y := sample()
		if err := eng.AddData(spq.DataObject{ID: uint64(i), X: x, Y: y}); err != nil {
			log.Fatal(err)
		}
	}
	for i := 0; i < 4000; i++ {
		x, y := sample()
		kws := []string{cuisines[r.Intn(len(cuisines))]}
		for n := r.Intn(3); n > 0; n-- {
			kws = append(kws, amenities[r.Intn(len(amenities))])
		}
		if err := eng.AddFeature(spq.Feature{ID: uint64(10000 + i), X: x, Y: y, Keywords: kws}); err != nil {
			log.Fatal(err)
		}
	}

	query := spq.Query{
		K:        5,
		Radius:   0.25, // 250 m
		Keywords: []string{"italian", "romantic", "wine"},
	}
	fmt.Printf("Query: top-%d hotels with a restaurant matching %v within %.2f km\n\n",
		query.K, query.Keywords, query.Radius)

	for _, alg := range spq.Algorithms() {
		rep, err := eng.QueryReport(query, spq.WithAlgorithm(alg), spq.WithGrid(20))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s  %6.1f ms  features examined: %-6d results:",
			rep.Algorithm, rep.TotalMillis, rep.Counters["spq.reduce.features.examined"])
		for _, res := range rep.Results {
			fmt.Printf("  h%d(%.2f)", res.ID, res.Score)
		}
		fmt.Println()
	}
	fmt.Println("\nAll algorithms return the same scores; the early-termination")
	fmt.Println("algorithms (eSPQlen, eSPQsco) examine far fewer feature objects.")
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
