// Serving: the network daemon walkthrough, in-process.
//
// The example assembles exactly what cmd/spqd assembles — an engine behind
// serve.New with bounded admission and a per-tenant quota — and then plays
// a client session against it over real HTTP: a plain query, a query with
// execution options, the introspected effective options, a tenant hitting
// its quota (429 with code "overloaded"), the shape of an invalid query
// (400 with code "invalid_query"), the /stats snapshot, and a graceful
// drain. Everything a deployment does, without leaving one process.
//
//	go run ./examples/serving
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"

	"spq"
	"spq/serve"
)

func main() {
	// 1. An engine with a sealed synthetic dataset, as spqd boots it.
	eng := spq.NewEngine(spq.Config{Storage: spq.StorageMemory, Seed: 42})
	if err := eng.LoadSynthetic("uniform", 4000); err != nil {
		log.Fatal(err)
	}
	if err := eng.Seal(); err != nil {
		log.Fatal(err)
	}

	// 2. The serving layer: at most 4 queries executing, 8 more queued,
	// and each tenant limited to 2 queries of burst (so the quota is easy
	// to demonstrate).
	srv := serve.New(eng, serve.Config{
		MaxInflight: 4,
		MaxQueue:    8,
		Quota:       serve.QuotaConfig{RatePerSec: 0.001, Burst: 2},
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	fmt.Printf("daemon serving at %s\n\n", ts.URL)

	kws := eng.FrequentKeywords(4)
	post := func(req spq.QueryRequest, tenant string) (*spq.QueryResponse, int) {
		body, err := json.Marshal(req)
		if err != nil {
			log.Fatal(err)
		}
		hreq, err := http.NewRequest("POST", ts.URL+"/query", bytes.NewReader(body))
		if err != nil {
			log.Fatal(err)
		}
		hreq.Header.Set("X-SPQ-Tenant", tenant)
		resp, err := http.DefaultClient.Do(hreq)
		if err != nil {
			log.Fatal(err)
		}
		defer resp.Body.Close()
		var out spq.QueryResponse
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			log.Fatal(err)
		}
		return &out, resp.StatusCode
	}

	// 3. A plain query: top-5 objects near the two most frequent keywords.
	q := spq.Query{K: 5, Radius: 0.05, Keywords: kws[:2]}
	resp, status := post(spq.QueryRequest{Query: q}, "demo")
	fmt.Printf("POST /query -> %d, %d results from generation %d in %.1fms\n",
		status, len(resp.Results), resp.Generation, resp.TotalMillis)
	for i, r := range resp.Results {
		fmt.Printf("  #%d object %d score %.3f\n", i+1, r.ID, r.Score)
	}

	// 4. Execution options travel in the same JSON body, and the response
	// echoes what actually applied (Report.Options over the wire).
	resp, status = post(spq.QueryRequest{
		Query:     q,
		Algorithm: "eSPQlen",
		AutoPlan:  true,
	}, "demo")
	fmt.Printf("\nwith algorithm+planner -> %d, effective options %+v\n", status, *resp.Options)

	// 5. The "demo" tenant has burst 2 and has spent it: the third query
	// is shed with 429/overloaded — without occupying any admission slot.
	resp, status = post(spq.QueryRequest{Query: q}, "demo")
	fmt.Printf("\nover quota        -> %d code=%q (%s)\n", status, resp.Code, resp.Error)

	// 6. Another tenant is unaffected.
	_, status = post(spq.QueryRequest{Query: q}, "other")
	fmt.Printf("other tenant      -> %d\n", status)

	// 7. Invalid queries are named precisely: taxonomy code plus field.
	resp, status = post(spq.QueryRequest{Query: spq.Query{K: 0, Radius: 0.05, Keywords: kws[:1]}}, "other")
	fmt.Printf("invalid query     -> %d code=%q (%s)\n", status, resp.Code, resp.Error)

	// 8. /stats aggregates outcomes, latency quantiles and engine counters.
	st := srv.Stats()
	fmt.Printf("\n/stats: served=%d shed=%d invalid=%d p99=%.2fms generation=%d\n",
		st.Served, st.Shed, st.Invalid, st.P99Millis, st.Generation)

	// 9. Graceful drain: in-flight queries finish, new ones get 503, and
	// only then is it safe to close the engine.
	if err := srv.Drain(context.Background()); err != nil {
		log.Fatal(err)
	}
	_, status = post(spq.QueryRequest{Query: q}, "other")
	fmt.Printf("after drain       -> %d (daemon refusing, engine still intact)\n", status)
	if err := eng.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("drained and closed")
}
