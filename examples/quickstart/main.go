// Quickstart: the paper's running example (Example 1 / Figure 1).
//
// Five hotels (data objects) and eight restaurants (feature objects with
// cuisine keywords) are loaded, and we ask for the best hotel that has a
// highly-rated Italian restaurant within 1.5 distance units. The paper
// works the answer out by hand: hotel p1, via restaurant f4 with Jaccard
// score 1.0.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"spq"
)

func main() {
	eng := spq.NewEngine(spq.Config{})

	// The hotels of Figure 1.
	err := eng.AddData(
		spq.DataObject{ID: 1, X: 4.6, Y: 4.8},
		spq.DataObject{ID: 2, X: 7.5, Y: 1.7},
		spq.DataObject{ID: 3, X: 8.9, Y: 5.2},
		spq.DataObject{ID: 4, X: 1.8, Y: 1.8},
		spq.DataObject{ID: 5, X: 1.9, Y: 9.0},
	)
	if err != nil {
		log.Fatal(err)
	}

	// The restaurants of Table 2.
	err = eng.AddFeature(
		spq.Feature{ID: 101, X: 2.8, Y: 1.2, Keywords: []string{"italian", "gourmet"}},
		spq.Feature{ID: 102, X: 5.0, Y: 3.8, Keywords: []string{"chinese", "cheap"}},
		spq.Feature{ID: 103, X: 8.7, Y: 1.9, Keywords: []string{"sushi", "wine"}},
		spq.Feature{ID: 104, X: 3.8, Y: 5.5, Keywords: []string{"italian"}},
		spq.Feature{ID: 105, X: 5.2, Y: 5.1, Keywords: []string{"mexican", "exotic"}},
		spq.Feature{ID: 106, X: 7.4, Y: 5.4, Keywords: []string{"greek", "traditional"}},
		spq.Feature{ID: 107, X: 3.0, Y: 8.1, Keywords: []string{"italian", "spaghetti"}},
		spq.Feature{ID: 108, X: 9.5, Y: 7.0, Keywords: []string{"indian"}},
	)
	if err != nil {
		log.Fatal(err)
	}

	// "Find the top-3 hotels with an Italian restaurant within 1.5 units",
	// processed on a 4x4 grid like Figure 2.
	results, err := eng.Query(
		spq.Query{K: 3, Radius: 1.5, Keywords: []string{"italian"}},
		spq.WithGrid(4),
		spq.WithBounds(0, 0, 10, 10),
	)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Top hotels near an Italian restaurant (r = 1.5):")
	for i, r := range results {
		fmt.Printf("%d. hotel p%d at (%.1f, %.1f) — score %.2f\n", i+1, r.ID, r.X, r.Y, r.Score)
	}
	// Output matches the paper: p1 wins with score 1.0 thanks to f4;
	// p4 (via f1) and p5 (via f7) follow with 0.5.
}
