// Scalability: Figure 8 of the paper in miniature.
//
// The example doubles the dataset size four times and times all three
// algorithms on each size. pSPQ grows linearly with the input while the
// early-termination algorithms stay nearly flat — the paper's headline
// scaling result.
//
//	go run ./examples/scalability
//	go run ./examples/scalability -base 500   # tiny run (CI smoke)
package main

import (
	"flag"
	"fmt"
	"log"

	"spq"
)

func main() {
	base := flag.Int("base", 8000, "smallest dataset size; the example doubles it three times")
	flag.Parse()
	fmt.Printf("%-8s  %10s  %10s  %10s\n", "objects", "pSPQ(ms)", "eSPQlen(ms)", "eSPQsco(ms)")
	for _, n := range []int{*base, *base * 2, *base * 4, *base * 8} {
		var times []float64
		for _, alg := range spq.Algorithms() {
			eng := spq.NewEngine(spq.Config{Storage: spq.StorageMemory})
			if err := eng.LoadSynthetic("uniform", n); err != nil {
				log.Fatal(err)
			}
			kws := eng.FrequentKeywords(3)
			rep, err := eng.QueryReport(
				spq.Query{K: 10, Radius: 0.007, Keywords: kws},
				spq.WithAlgorithm(alg), spq.WithGrid(10),
			)
			if err != nil {
				log.Fatal(err)
			}
			times = append(times, rep.TotalMillis)
		}
		fmt.Printf("%-8d  %10.1f  %10.1f  %10.1f\n", n, times[0], times[1], times[2])
	}
}
