package spq

import (
	"errors"
	"fmt"
	"strings"
)

// Canonical JSON wire forms of a query submission and its outcome, shared
// by the serving daemon (cmd/spqd, package serve), its HTTP/JSON and
// binary-protocol clients, and the load harness (cmd/spqload). Keeping
// them in the root package means daemon and client cannot drift: both
// marshal exactly these structs.

// QueryRequest is one query submission. The embedded Query supplies the
// k/radius/keywords/mode fields; the rest select execution options
// (mirroring the QueryOption constructors) and the requesting tenant.
type QueryRequest struct {
	Query
	// Algorithm selects the processing algorithm by name ("pSPQ",
	// "eSPQlen", "eSPQsco", case-insensitive); empty selects the default.
	Algorithm string `json:"algorithm,omitempty"`
	// AutoPlan enables the query planner (WithAutoPlan).
	AutoPlan bool `json:"auto_plan,omitempty"`
	// Cache and Delta, when present, control cache participation and delta
	// visibility (WithCache / WithDelta); absent means the defaults.
	Cache *bool `json:"cache,omitempty"`
	Delta *bool `json:"delta,omitempty"`
	// GridN and Reducers override the query-time grid and reduce-task
	// count (WithGrid / WithReducers) when positive.
	GridN    int `json:"grid_n,omitempty"`
	Reducers int `json:"reducers,omitempty"`
	// Tenant names the requesting tenant for per-tenant quotas; empty
	// falls under the daemon's default quota (or the X-SPQ-Tenant header).
	Tenant string `json:"tenant,omitempty"`
	// TimeoutMillis bounds this query's total time (queueing included)
	// when positive; the daemon's default deadline applies otherwise. On
	// the binary protocol this is the only way to carry a deadline.
	TimeoutMillis int64 `json:"timeout_ms,omitempty"`
}

// Options resolves the request's execution options into QueryOptions for
// QueryReportContext. An unknown algorithm name is rejected with
// ErrInvalidQuery (the query itself is validated by the engine).
func (r *QueryRequest) Options() ([]QueryOption, error) {
	var opts []QueryOption
	if r.Algorithm != "" {
		alg, err := ParseAlgorithm(r.Algorithm)
		if err != nil {
			return nil, err
		}
		opts = append(opts, WithAlgorithm(alg))
	}
	if r.AutoPlan {
		opts = append(opts, WithAutoPlan())
	}
	if r.Cache != nil {
		opts = append(opts, WithCache(*r.Cache))
	}
	if r.Delta != nil {
		opts = append(opts, WithDelta(*r.Delta))
	}
	if r.GridN != 0 {
		opts = append(opts, WithGrid(r.GridN))
	}
	if r.Reducers != 0 {
		opts = append(opts, WithReducers(r.Reducers))
	}
	return opts, nil
}

// ParseAlgorithm maps a wire algorithm name onto the Algorithm constant,
// accepting the canonical names ("pSPQ", "eSPQlen", "eSPQsco") in any
// case. Unknown names wrap ErrInvalidQuery.
func ParseAlgorithm(name string) (Algorithm, error) {
	switch strings.ToLower(name) {
	case "pspq":
		return PSPQ, nil
	case "espqlen":
		return ESPQLen, nil
	case "espqsco":
		return ESPQSco, nil
	default:
		return 0, fmt.Errorf("%w: unknown algorithm %q", ErrInvalidQuery, name)
	}
}

// QueryResponse is the outcome of one query: the ranked results plus the
// execution facts a serving client needs (which generation answered, how
// long the job ran, the effective options). Failed queries carry Error
// and Code instead of Results.
type QueryResponse struct {
	Results []Result `json:"results"`
	// Generation is the storage generation the query was served from.
	Generation uint64 `json:"generation"`
	// TotalMillis is the end-to-end job duration; 0 for cache hits and
	// planner-proven empty results.
	TotalMillis float64 `json:"total_millis"`
	// Options echoes the effective execution settings (Report.Options).
	Options *EffectiveOptions `json:"options,omitempty"`
	// Counters are the job counters; populated only when the client asked
	// for them (the daemon's ?counters=1).
	Counters map[string]int64 `json:"counters,omitempty"`
	// Error and Code report a failure: Error is the message, Code the
	// taxonomy slug from ErrorCode.
	Error string `json:"error,omitempty"`
	Code  string `json:"code,omitempty"`
}

// Error-code slugs of the wire protocol, one per taxonomy sentinel.
const (
	CodeInvalidQuery = "invalid_query"
	CodeOverloaded   = "overloaded"
	CodeCanceled     = "canceled"
	CodeClosed       = "closed"
	CodeUnavailable  = "data_unavailable"
	CodeInternal     = "internal"
)

// ErrorCode maps a query error onto its wire slug via the taxonomy of
// errors.go. Unrecognized errors are "internal".
func ErrorCode(err error) string {
	switch {
	case errors.Is(err, ErrInvalidQuery):
		return CodeInvalidQuery
	case errors.Is(err, ErrOverloaded):
		return CodeOverloaded
	case errors.Is(err, ErrCanceled):
		return CodeCanceled
	case errors.Is(err, ErrClosed):
		return CodeClosed
	case errors.Is(err, ErrDataUnavailable):
		return CodeUnavailable
	default:
		return CodeInternal
	}
}
