// Command spqload is an open-loop load harness for the spqd daemon: it
// fires queries at a fixed arrival rate over the binary protocol —
// arrivals do not wait for completions, so a slow server faces a growing
// backlog exactly like production traffic — and reports p50/p95/p99
// latency, the shed (429) rate, and result correctness.
//
// Correctness: spqd's synthetic datasets are seed-deterministic, so the
// harness builds an identical in-process engine, derives the same keyword
// workload, and checks every served response byte-for-byte (canonical
// JSON) against the local engine's answer. Any divergence is a mismatch
// and fails the run.
//
// Exit status is non-zero if any result mismatched, any request failed
// outright, -max-p99 was exceeded, or fewer than -min-shed of requests
// were shed (used by CI to prove load shedding engages at 2x capacity).
//
//	spqload -addr 127.0.0.1:8643 -rate 200 -duration 5s
//	spqload -spawn ./spqd -rate 500 -duration 3s -max-inflight 2 -min-shed 0.05
package main

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"os"
	"os/exec"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"spq"
)

func main() {
	var (
		addr     = flag.String("addr", "", "binary-protocol address of a running spqd")
		spawn    = flag.String("spawn", "", "path to an spqd binary to spawn and tear down")
		rate     = flag.Float64("rate", 100, "arrival rate in queries/sec (open loop)")
		duration = flag.Duration("duration", 5*time.Second, "measurement window")
		conns    = flag.Int("conns", 8, "connection pool size (arrivals beyond it dial fresh)")
		dataset  = flag.String("dataset", "uniform", "dataset family (must match the daemon)")
		n        = flag.Int("n", 20000, "dataset size (must match the daemon)")
		seed     = flag.Int64("seed", 42, "dataset seed (must match the daemon)")
		nq       = flag.Int("queries", 16, "distinct queries cycled through the workload")
		k        = flag.Int("k", 5, "query k")
		radius   = flag.Float64("radius", 0.05, "query radius")
		timeout  = flag.Duration("timeout", 2*time.Second, "per-request deadline carried in timeout_ms")
		verify   = flag.Bool("verify", true, "check responses against an identical in-process engine")
		maxP99   = flag.Duration("max-p99", 0, "fail if served p99 exceeds this (0 = off)")
		minShed  = flag.Float64("min-shed", 0, "fail if less than this fraction of requests was shed")
		jsonOut  = flag.Bool("json", false, "emit the summary as JSON")
		// spawn-mode daemon tuning
		inflight = flag.Int("max-inflight", 0, "spawned daemon's -max-inflight")
		queue    = flag.Int("queue", 0, "spawned daemon's -queue")
		qcache   = flag.Int("query-cache", 0, "spawned daemon's -query-cache (negative disables; use with overload runs so every query executes)")
	)
	flag.Parse()
	log.SetPrefix("spqload: ")
	log.SetFlags(0)

	// All the work happens in run so its defers — spawned-daemon teardown
	// above all — fire before os.Exit.
	os.Exit(run(config{
		addr: *addr, spawn: *spawn, rate: *rate, duration: *duration,
		conns: *conns, dataset: *dataset, n: *n, seed: *seed, nq: *nq,
		k: *k, radius: *radius, timeout: *timeout, verify: *verify,
		maxP99: *maxP99, minShed: *minShed, jsonOut: *jsonOut,
		inflight: *inflight, queue: *queue, qcache: *qcache,
	}))
}

type config struct {
	addr, spawn, dataset      string
	rate, radius, minShed     float64
	duration, timeout, maxP99 time.Duration
	conns, n, nq, k           int
	inflight, queue, qcache   int
	seed                      int64
	verify, jsonOut           bool
}

func run(cfg config) int {
	target := cfg.addr
	if cfg.spawn != "" {
		var stop func()
		target, stop = spawnDaemon(cfg.spawn, cfg.dataset, cfg.n, cfg.seed, cfg.inflight, cfg.queue, cfg.qcache)
		defer stop()
	}
	if target == "" {
		log.Print("need -addr or -spawn")
		return 2
	}

	queries, references, err := buildWorkload(cfg.dataset, cfg.n, cfg.seed, cfg.nq, cfg.k, cfg.radius, cfg.verify)
	if err != nil {
		log.Printf("workload: %v", err)
		return 1
	}

	p := &pool{addr: target, free: make(chan net.Conn, cfg.conns)}
	defer p.drain()

	// Warm each distinct query once (sequentially, uncounted) so the timed
	// window measures the serving path, not first-touch compulsory misses.
	for i := range queries {
		if _, _, err := p.roundTrip(spq.QueryRequest{Query: queries[i], TimeoutMillis: 30_000}); err != nil {
			log.Printf("warmup query %d: %v", i, err)
			return 1
		}
	}

	var (
		sent, ok, shed, canceled, failed, mismatches atomic.Int64
		mu                                           sync.Mutex
		lat                                          []time.Duration
		wg                                           sync.WaitGroup
	)
	interval := time.Duration(float64(time.Second) / cfg.rate)
	if interval <= 0 {
		log.Printf("rate %g too high", cfg.rate)
		return 2
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	deadline := time.Now().Add(cfg.duration)
	tm := cfg.timeout
	for i := 0; time.Now().Before(deadline); i++ {
		<-tick.C
		qi := i % len(queries)
		sent.Add(1)
		wg.Add(1)
		go func() {
			defer wg.Done()
			req := spq.QueryRequest{Query: queries[qi], TimeoutMillis: tm.Milliseconds()}
			start := time.Now()
			resp, raw, err := p.roundTrip(req)
			d := time.Since(start)
			if err != nil {
				failed.Add(1)
				return
			}
			switch resp.Code {
			case "":
				ok.Add(1)
				mu.Lock()
				lat = append(lat, d)
				mu.Unlock()
				if references != nil && !bytes.Equal(raw, references[qi]) {
					if mismatches.Add(1) == 1 {
						log.Printf("MISMATCH query %d:\n  got  %s\n  want %s", qi, raw, references[qi])
					}
				}
			case spq.CodeOverloaded:
				shed.Add(1)
			case spq.CodeCanceled:
				canceled.Add(1)
			default:
				failed.Add(1)
				log.Printf("query %d failed: %s (%s)", qi, resp.Error, resp.Code)
			}
		}()
	}
	wg.Wait()

	summary := summarize(sent.Load(), ok.Load(), shed.Load(), canceled.Load(), failed.Load(), mismatches.Load(), lat, cfg.duration)
	if cfg.jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		enc.Encode(summary) //nolint:errcheck // stdout
	} else {
		fmt.Printf("sent %d in %v (%.0f/s target %g/s)\n", summary.Sent, cfg.duration, summary.AchievedRate, cfg.rate)
		fmt.Printf("ok %d  shed %d (%.1f%%)  canceled %d  failed %d  mismatches %d\n",
			summary.OK, summary.Shed, 100*summary.ShedRate, summary.Canceled, summary.Failed, summary.Mismatches)
		fmt.Printf("latency p50 %.2fms  p95 %.2fms  p99 %.2fms\n", summary.P50Millis, summary.P95Millis, summary.P99Millis)
	}

	code := 0
	if summary.Mismatches > 0 {
		log.Printf("FAIL: %d result mismatches", summary.Mismatches)
		code = 1
	}
	if summary.Failed > 0 {
		log.Printf("FAIL: %d failed requests", summary.Failed)
		code = 1
	}
	if cfg.maxP99 > 0 && time.Duration(summary.P99Millis*float64(time.Millisecond)) > cfg.maxP99 {
		log.Printf("FAIL: p99 %.2fms exceeds bound %v", summary.P99Millis, cfg.maxP99)
		code = 1
	}
	if cfg.minShed > 0 && summary.ShedRate < cfg.minShed {
		log.Printf("FAIL: shed rate %.3f below required %.3f (load shedding did not engage)", summary.ShedRate, cfg.minShed)
		code = 1
	}
	return code
}

// buildWorkload derives the deterministic query set and — when verifying —
// the canonical-JSON reference answer for each query from an in-process
// engine identical to the daemon's.
func buildWorkload(dataset string, n int, seed int64, nq, k int, radius float64, verify bool) ([]spq.Query, [][]byte, error) {
	e := spq.NewEngine(spq.Config{Storage: spq.StorageMemory, Seed: seed})
	if err := e.LoadSynthetic(dataset, n); err != nil {
		return nil, nil, fmt.Errorf("reference load: %w", err)
	}
	if err := e.Seal(); err != nil {
		return nil, nil, fmt.Errorf("reference seal: %w", err)
	}
	defer e.Close()
	kws := e.FrequentKeywords(12)
	if len(kws) < 2 {
		return nil, nil, fmt.Errorf("only %d frequent keywords in %s/%d", len(kws), dataset, n)
	}
	queries := make([]spq.Query, nq)
	for i := range queries {
		queries[i] = spq.Query{
			K:        k,
			Radius:   radius,
			Keywords: []string{kws[i%len(kws)], kws[(i*3+1)%len(kws)]},
		}
	}
	if !verify {
		return queries, nil, nil
	}
	refs := make([][]byte, nq)
	for i, q := range queries {
		res, err := e.Query(q)
		if err != nil {
			return nil, nil, fmt.Errorf("reference query %d: %w", i, err)
		}
		if res == nil {
			res = []spq.Result{}
		}
		raw, err := json.Marshal(res)
		if err != nil {
			return nil, nil, err
		}
		refs[i] = raw
	}
	return queries, refs, nil
}

// pool is a trivial connection pool over the binary protocol. Arrivals
// beyond the pool size dial fresh connections (open loop: the client never
// queues on itself).
type pool struct {
	addr string
	free chan net.Conn
}

func (p *pool) get() (net.Conn, error) {
	select {
	case c := <-p.free:
		return c, nil
	default:
		return net.DialTimeout("tcp", p.addr, 5*time.Second)
	}
}

func (p *pool) put(c net.Conn) {
	select {
	case p.free <- c:
	default:
		c.Close()
	}
}

func (p *pool) drain() {
	for {
		select {
		case c := <-p.free:
			c.Close()
		default:
			return
		}
	}
}

// roundTrip sends one request frame and decodes the response, returning
// the raw JSON of the results array for byte-level verification.
func (p *pool) roundTrip(req spq.QueryRequest) (*spq.QueryResponse, []byte, error) {
	conn, err := p.get()
	if err != nil {
		return nil, nil, err
	}
	payload, err := json.Marshal(&req)
	if err != nil {
		conn.Close()
		return nil, nil, err
	}
	if err := writeFrame(conn, payload); err != nil {
		conn.Close()
		return nil, nil, err
	}
	frame, err := readFrame(conn)
	if err != nil {
		conn.Close()
		return nil, nil, err
	}
	p.put(conn)
	// Decode the envelope but keep Results raw for byte comparison.
	var envelope struct {
		Results json.RawMessage `json:"results"`
	}
	var resp spq.QueryResponse
	if err := json.Unmarshal(frame, &resp); err != nil {
		return nil, nil, err
	}
	if err := json.Unmarshal(frame, &envelope); err != nil {
		return nil, nil, err
	}
	return &resp, []byte(envelope.Results), nil
}

const maxFrame = 4 << 20

func readFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n == 0 || n > maxFrame {
		return nil, fmt.Errorf("frame length %d out of range", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

func writeFrame(w io.Writer, payload []byte) error {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// spawnDaemon launches an spqd child on ephemeral ports, scrapes its
// "listening <http> <bin>" banner, and returns the binary address plus a
// teardown func (SIGTERM, wait).
func spawnDaemon(bin, dataset string, n int, seed int64, inflight, queue, qcache int) (string, func()) {
	args := []string{
		"-addr", "127.0.0.1:0",
		"-dataset", dataset, "-n", fmt.Sprint(n), "-seed", fmt.Sprint(seed),
	}
	if inflight > 0 {
		args = append(args, "-max-inflight", fmt.Sprint(inflight))
	}
	if queue != 0 {
		args = append(args, "-queue", fmt.Sprint(queue))
	}
	if qcache != 0 {
		args = append(args, "-query-cache", fmt.Sprint(qcache))
	}
	cmd := exec.Command(bin, args...)
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		log.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		log.Fatalf("spawn %s: %v", bin, err)
	}
	sc := bufio.NewScanner(stdout)
	if !sc.Scan() {
		cmd.Process.Kill() //nolint:errcheck // teardown
		log.Fatalf("%s exited before printing its banner", bin)
	}
	fields := strings.Fields(sc.Text())
	if len(fields) != 3 || fields[0] != "listening" || fields[2] == "off" {
		cmd.Process.Kill() //nolint:errcheck // teardown
		log.Fatalf("unexpected banner %q", sc.Text())
	}
	go io.Copy(io.Discard, stdout) //nolint:errcheck // keep the pipe drained
	log.Printf("spawned %s: http %s binary %s", bin, fields[1], fields[2])
	return fields[2], func() {
		cmd.Process.Signal(syscall.SIGTERM) //nolint:errcheck // teardown
		done := make(chan struct{})
		go func() { cmd.Wait(); close(done) }() //nolint:errcheck // teardown
		select {
		case <-done:
		case <-time.After(40 * time.Second):
			cmd.Process.Kill() //nolint:errcheck // teardown
			<-done
		}
	}
}

// Summary is the machine-readable outcome (-json).
type Summary struct {
	Sent         int64   `json:"sent"`
	OK           int64   `json:"ok"`
	Shed         int64   `json:"shed"`
	Canceled     int64   `json:"canceled"`
	Failed       int64   `json:"failed"`
	Mismatches   int64   `json:"mismatches"`
	AchievedRate float64 `json:"achieved_rate"`
	ShedRate     float64 `json:"shed_rate"`
	P50Millis    float64 `json:"p50_ms"`
	P95Millis    float64 `json:"p95_ms"`
	P99Millis    float64 `json:"p99_ms"`
}

func summarize(sent, ok, shed, canceled, failed, mismatches int64, lat []time.Duration, window time.Duration) Summary {
	s := Summary{
		Sent: sent, OK: ok, Shed: shed, Canceled: canceled,
		Failed: failed, Mismatches: mismatches,
	}
	if window > 0 {
		s.AchievedRate = float64(sent) / window.Seconds()
	}
	if sent > 0 {
		s.ShedRate = float64(shed) / float64(sent)
	}
	if len(lat) > 0 {
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		q := func(p float64) float64 {
			i := int(p * float64(len(lat)-1))
			return float64(lat[i]) / float64(time.Millisecond)
		}
		s.P50Millis, s.P95Millis, s.P99Millis = q(0.50), q(0.95), q(0.99)
	}
	return s
}
