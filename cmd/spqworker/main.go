// Command spqworker runs one SPQ MapReduce worker process. It listens for
// task RPCs, waits for a master to attach (spq.Config.Workers), and
// executes the map and reduce tasks of SPQ query jobs against the master's
// storage, fetched over the same connection. Stop it with SIGINT/SIGTERM;
// a detached master simply re-executes the worker's in-flight tasks
// elsewhere.
//
// Usage:
//
//	spqworker -addr 127.0.0.1:0 -slots 4
//
// The first stdout line is "listening <host:port>", so a parent process
// spawning workers on ephemeral ports can scrape the address to pass to
// the engine.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"syscall"

	"spq/internal/mapreduce"

	// Link the SPQ query job kind so shipped jobs are executable here.
	_ "spq/internal/core"
)

func main() {
	var (
		addr  = flag.String("addr", "127.0.0.1:0", "host:port to listen on (port 0 picks an ephemeral port)")
		slots = flag.Int("slots", 0, "concurrent task slots offered to the master (default NumCPU)")
	)
	flag.Parse()

	n := *slots
	if n <= 0 {
		n = runtime.NumCPU()
	}
	w, err := mapreduce.StartWorker(*addr, n)
	if err != nil {
		fmt.Fprintf(os.Stderr, "spqworker: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("listening %s\n", w.Addr())
	os.Stdout.Sync()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	w.Stop()
}
