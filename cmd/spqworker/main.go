// Command spqworker runs one SPQ MapReduce worker process. It listens for
// task RPCs, waits for a master to attach (spq.Config.Workers), and
// executes the map and reduce tasks of SPQ query jobs against the master's
// storage, fetched over the same connection. Stop it with SIGINT/SIGTERM;
// a detached master simply re-executes the worker's in-flight tasks
// elsewhere.
//
// Usage:
//
//	spqworker -addr 127.0.0.1:0 -slots 4
//	spqworker -addr 127.0.0.1:0 -master 127.0.0.1:7070 -name worker-a
//
// With -master the worker joins the running engine at that address itself
// (the master dials it back), keeps probing the master, and rejoins under
// the name it was assigned whenever the connection is lost — elastic
// membership without restarting the engine. Without -master the worker
// passively waits to be attached via spq.Config.Workers or
// Engine.AddWorker.
//
// The first stdout line is "listening <host:port>", so a parent process
// spawning workers on ephemeral ports can scrape the address to pass to
// the engine.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"spq/internal/mapreduce"

	// Link the SPQ query job kind so shipped jobs are executable here.
	_ "spq/internal/core"
)

func main() {
	var (
		addr   = flag.String("addr", "127.0.0.1:0", "host:port to listen on (port 0 picks an ephemeral port)")
		slots  = flag.Int("slots", 0, "concurrent task slots offered to the master (default NumCPU)")
		master = flag.String("master", "", "master address to join; the worker registers itself and rejoins on connection loss")
		name   = flag.String("name", "", "worker name to request when joining (default master-assigned)")
		probe  = flag.Duration("probe", 2*time.Second, "master liveness probe interval of the reconnect loop")
	)
	flag.Parse()

	n := *slots
	if n <= 0 {
		n = runtime.NumCPU()
	}
	w, err := mapreduce.StartWorker(*addr, n)
	if err != nil {
		fmt.Fprintf(os.Stderr, "spqworker: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("listening %s\n", w.Addr())
	os.Stdout.Sync()

	stop := make(chan struct{})
	if *master != "" {
		go joinLoop(w.Addr(), *master, *name, *probe, stop)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	close(stop)
	w.Stop()
}

// joinLoop keeps the worker registered with the master. Every probe
// interval it offers to join under its (last assigned) name: while the
// registration is live the master refuses the duplicate — a cheap
// liveness handshake — and whenever the worker was dropped (master
// restart, quarantine after call timeouts, heartbeat loss) the same offer
// rejoins it in place, reclaiming its lanes. An unreachable master just
// means the next tick retries.
func joinLoop(workerAddr, masterAddr, name string, probe time.Duration, stop <-chan struct{}) {
	for {
		if err := mapreduce.PingMaster(masterAddr); err == nil {
			got, err := mapreduce.JoinMaster(masterAddr, workerAddr, name)
			if err == nil && got != name {
				fmt.Printf("joined %s as %s\n", masterAddr, got)
				os.Stdout.Sync()
				name = got
			}
			// A refusal means the current registration is still live.
		}
		select {
		case <-stop:
			return
		case <-time.After(probe):
		}
	}
}
