// Command benchguard compares two spqbench -json result files and fails
// (exit 1) when the candidate's query latency regresses past the allowed
// factor. Rows are matched on (figure, series, x); the comparison is the
// geometric mean of the per-row millis ratios over the matched set, so a
// single noisy cell cannot fail the gate and a uniform slowdown cannot
// hide behind one fast cell. CI runs it against the checked-in baseline:
//
//	spqbench -json -quick > candidate.json
//	benchguard -baseline BENCH_PR2_post.json -candidate candidate.json -max-ratio 2
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
)

// row mirrors the spqbench -json output row (internal/bench.Row); only
// the matching key and the latency participate.
type row struct {
	Figure string  `json:"figure"`
	Series string  `json:"series"`
	X      string  `json:"x"`
	Millis float64 `json:"millis"`
}

func load(path string) (map[string]float64, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rows []row
	if err := json.Unmarshal(raw, &rows); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	out := make(map[string]float64, len(rows))
	for _, r := range rows {
		if r.Millis > 0 {
			out[r.Figure+"|"+r.Series+"|"+r.X] = r.Millis
		}
	}
	return out, nil
}

func main() {
	var (
		baseline  = flag.String("baseline", "", "baseline spqbench -json file")
		candidate = flag.String("candidate", "", "candidate spqbench -json file")
		maxRatio  = flag.Float64("max-ratio", 2.0, "fail when geomean(candidate/baseline) exceeds this")
		minRows   = flag.Int("min-rows", 10, "fail when fewer rows match (guards against an empty comparison passing vacuously)")
	)
	flag.Parse()
	if *baseline == "" || *candidate == "" {
		fmt.Fprintln(os.Stderr, "benchguard: -baseline and -candidate are required")
		os.Exit(2)
	}
	base, err := load(*baseline)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: %v\n", err)
		os.Exit(2)
	}
	cand, err := load(*candidate)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: %v\n", err)
		os.Exit(2)
	}

	var logSum float64
	matched := 0
	worstKey, worstRatio := "", 0.0
	for key, cm := range cand {
		bm, ok := base[key]
		if !ok {
			continue
		}
		ratio := cm / bm
		logSum += math.Log(ratio)
		matched++
		if ratio > worstRatio {
			worstKey, worstRatio = key, ratio
		}
	}
	if matched < *minRows {
		fmt.Fprintf(os.Stderr, "benchguard: only %d rows matched between %s and %s (want >= %d)\n",
			matched, *baseline, *candidate, *minRows)
		os.Exit(1)
	}
	geomean := math.Exp(logSum / float64(matched))
	fmt.Printf("benchguard: %d rows matched, geomean latency ratio %.3fx (limit %.2fx), worst %.3fx at %s\n",
		matched, geomean, *maxRatio, worstRatio, worstKey)
	if geomean > *maxRatio {
		fmt.Fprintf(os.Stderr, "benchguard: FAIL — geomean query latency regressed %.3fx > %.2fx\n",
			geomean, *maxRatio)
		os.Exit(1)
	}
	fmt.Println("benchguard: OK")
}
