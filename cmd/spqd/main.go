// Command spqd is the spatial-preference-query serving daemon: a
// long-running process that loads (or generates) a dataset, seals it, and
// serves queries over HTTP/JSON plus a length-prefixed binary endpoint
// for bench clients (cmd/spqload).
//
// Endpoints:
//
//	POST /query     one spq.QueryRequest -> spq.QueryResponse
//	GET  /metrics   Prometheus-style text: request outcomes, latency
//	                histogram, admission gauges, aggregated spq.* counters
//	GET  /stats     the same as JSON (serve.Stats)
//	GET  /healthz   200 while serving, 503 while draining
//
// Admission is bounded (-max-inflight running, -queue waiting) and shed
// beyond that with 429; queued requests whose deadline expires are evicted
// rather than served late. Per-tenant token buckets (-quota-rps,
// -quota-burst) shed abusive tenants with 429 without consuming admission.
// SIGINT/SIGTERM starts a graceful drain: in-flight queries finish, new
// ones get 503, then the engine closes.
//
// The first stdout line is "listening <http-addr> <bin-addr>", so a parent
// process (spqload -spawn, the CI smoke job) can scrape the bound ports.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"spq"
	"spq/serve"
)

func main() {
	var (
		addr       = flag.String("addr", "127.0.0.1:8642", "HTTP listen address")
		binAddr    = flag.String("bin-addr", "", "binary-protocol listen address (default: HTTP port + 1; 'off' disables)")
		dataset    = flag.String("dataset", "uniform", "synthetic dataset family (uniform, cluster)")
		n          = flag.Int("n", 20000, "synthetic dataset size in objects")
		seed       = flag.Int64("seed", 42, "dataset generation seed")
		mapSlots   = flag.Int("map-slots", 0, "map task slots (default 8)")
		redSlots   = flag.Int("reduce-slots", 0, "reduce task slots (default 8)")
		qcache     = flag.Int("query-cache", 0, "query cache size in reports (0 default, negative disables)")
		inflight   = flag.Int("max-inflight", 0, "max concurrently executing queries (default 2x GOMAXPROCS)")
		queue      = flag.Int("queue", 0, "max queries waiting for admission (default 4x max-inflight)")
		maxConns   = flag.Int("max-conns", 0, "max concurrent binary-protocol connections; beyond it new conns are shed with a typed overloaded frame (default 8x max-inflight, negative disables)")
		deadline   = flag.Duration("deadline", 10*time.Second, "default per-query deadline, queueing included")
		quotaRPS   = flag.Float64("quota-rps", 0, "per-tenant sustained queries/sec (0 disables quotas)")
		quotaBurst = flag.Float64("quota-burst", 0, "per-tenant burst size (default max(quota-rps, 1))")
		drainWait  = flag.Duration("drain-wait", 30*time.Second, "max time to wait for in-flight queries on shutdown")
	)
	flag.Parse()
	log.SetPrefix("spqd: ")
	log.SetFlags(log.LstdFlags | log.Lmicroseconds)

	eng := spq.NewEngine(spq.Config{
		Storage:  spq.StorageMemory,
		Seed:     *seed,
		MapSlots: *mapSlots, ReduceSlots: *redSlots,
		QueryCache: *qcache,
	})
	log.Printf("loading %s/%d (seed %d)", *dataset, *n, *seed)
	if err := eng.LoadSynthetic(*dataset, *n); err != nil {
		log.Fatalf("load: %v", err)
	}
	if err := eng.Seal(); err != nil {
		log.Fatalf("seal: %v", err)
	}

	srv := serve.New(eng, serve.Config{
		MaxInflight:    *inflight,
		MaxQueue:       *queue,
		MaxBinaryConns: *maxConns,
		DefaultTimeout: *deadline,
		Quota:          serve.QuotaConfig{RatePerSec: *quotaRPS, Burst: *quotaBurst},
	})

	hl, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("listen: %v", err)
	}
	var bl net.Listener
	binShown := "off"
	if *binAddr != "off" {
		ba := *binAddr
		if ba == "" {
			host, port, err := net.SplitHostPort(hl.Addr().String())
			if err != nil {
				log.Fatalf("split %q: %v", hl.Addr(), err)
			}
			var p int
			fmt.Sscan(port, &p) //nolint:errcheck // port from the listener is numeric
			ba = net.JoinHostPort(host, fmt.Sprint(p+1))
		}
		if bl, err = net.Listen("tcp", ba); err != nil {
			log.Fatalf("listen binary: %v", err)
		}
		binShown = bl.Addr().String()
	}

	// The parent-scrapeable banner; keep it the first stdout line.
	fmt.Printf("listening %s %s\n", hl.Addr(), binShown)
	os.Stdout.Sync() //nolint:errcheck // best effort

	hs := &http.Server{Handler: srv.Handler()}
	httpDone := make(chan error, 1)
	go func() { httpDone <- hs.Serve(hl) }()
	binDone := make(chan error, 1)
	if bl != nil {
		go func() { binDone <- srv.ServeBinary(bl) }()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	s := <-sig
	log.Printf("caught %v, draining (max %v)", s, *drainWait)

	ctx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		log.Printf("drain: %v (closing anyway)", err)
	}
	hs.Shutdown(ctx) //nolint:errcheck // draining already waited for queries
	if err := eng.Close(); err != nil {
		log.Printf("engine close: %v", err)
	}
	log.Printf("bye")
}
