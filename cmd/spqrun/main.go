// Command spqrun answers a single spatial preference query using keywords
// over one or more object files (see spqgen for the format), running the
// selected algorithm on the in-process simulated cluster.
//
// Usage:
//
//	spqrun -files un.txt -keywords w3,w17,w99 -k 10 -r 0.01 -alg espqsco -grid 15
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"spq"
)

func main() {
	var (
		files    = flag.String("files", "", "comma-separated object files (required)")
		keywords = flag.String("keywords", "", "comma-separated query keywords (required)")
		k        = flag.Int("k", 10, "number of results")
		r        = flag.Float64("r", 0.01, "query radius")
		algName  = flag.String("alg", "espqsco", "algorithm: pspq, espqlen, espqsco")
		gridN    = flag.Int("grid", 0, "grid size (n x n cells; 0 = automatic: the planner's choice with -autoplan, the library default of 16 otherwise)")
		nodes    = flag.Int("nodes", 16, "simulated DFS nodes")
		slots    = flag.Int("slots", 8, "map/reduce worker slots")
		autoplan = flag.Bool("autoplan", false, "prune sealed cell files against the query and pick the grid from the manifest statistics")
		storage  = flag.String("storage", "text", "sealed storage format: text, spq3 (compressed columnar segments), spq2 (plain columnar segments), spq1 (record segments), memory")
		verbose  = flag.Bool("v", false, "print job counters")
	)
	flag.Parse()
	if *files == "" || *keywords == "" {
		flag.Usage()
		os.Exit(2)
	}
	if *gridN < 0 {
		fmt.Fprintf(os.Stderr, "spqrun: -grid %d invalid, must be non-negative\n", *gridN)
		os.Exit(2)
	}

	var alg spq.Algorithm
	switch strings.ToLower(*algName) {
	case "pspq":
		alg = spq.PSPQ
	case "espqlen":
		alg = spq.ESPQLen
	case "espqsco":
		alg = spq.ESPQSco
	default:
		fmt.Fprintf(os.Stderr, "spqrun: unknown algorithm %q\n", *algName)
		os.Exit(2)
	}

	cfg := spq.Config{Nodes: *nodes, MapSlots: *slots, ReduceSlots: *slots}
	switch strings.ToLower(*storage) {
	case "text":
		cfg.Storage = spq.StorageDFS
	case "spq3":
		cfg.Storage = spq.StorageDFSBinary
	case "spq2":
		cfg.Storage = spq.StorageDFSBinary
		cfg.Segment = spq.SegmentColumnar
	case "spq1":
		cfg.Storage = spq.StorageDFSBinary
		cfg.Segment = spq.SegmentRecord
	case "memory":
		cfg.Storage = spq.StorageMemory
	default:
		fmt.Fprintf(os.Stderr, "spqrun: unknown storage %q\n", *storage)
		os.Exit(2)
	}
	eng := spq.NewEngine(cfg)
	for _, f := range strings.Split(*files, ",") {
		if err := eng.LoadFile(f); err != nil {
			fmt.Fprintf(os.Stderr, "spqrun: %v\n", err)
			os.Exit(1)
		}
	}
	nd, nf := eng.Len()
	fmt.Printf("loaded %d data objects, %d feature objects\n", nd, nf)

	opts := []spq.QueryOption{spq.WithAlgorithm(alg)}
	if *gridN > 0 {
		opts = append(opts, spq.WithGrid(*gridN))
	}
	if *autoplan {
		opts = append(opts, spq.WithAutoPlan())
	}
	rep, err := eng.QueryReport(spq.Query{
		K:        *k,
		Radius:   *r,
		Keywords: strings.Split(*keywords, ","),
	}, opts...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "spqrun: %v\n", err)
		os.Exit(1)
	}

	fmt.Printf("%s: %d results in %.2f ms (map %.2f ms, reduce %.2f ms)\n",
		rep.Algorithm, len(rep.Results), rep.TotalMillis, rep.MapMillis, rep.ReduceMillis)
	if p := rep.Plan; p != nil {
		fmt.Printf("plan: read %d of %d records (pruned %d/%d data cells, %d/%d feature cells), grid %d, %d reducers\n",
			p.RecordsSelected, p.RecordsTotal, p.DataCellsPruned, p.DataCells,
			p.FeatureCellsPruned, p.FeatureCells, p.GridN, p.NumReducers)
	}
	for i, res := range rep.Results {
		fmt.Printf("%2d. object %-8d score %.4f  at (%.4f, %.4f)\n",
			i+1, res.ID, res.Score, res.X, res.Y)
	}
	if *verbose {
		fmt.Println("\ncounters:")
		names := make([]string, 0, len(rep.Counters))
		for n := range rep.Counters {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Printf("  %-35s %d\n", n, rep.Counters[n])
		}
	}
}
