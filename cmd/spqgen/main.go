// Command spqgen generates synthetic spatio-textual datasets in the
// library's text format, reproducing the statistical properties of the
// paper's four experimental dataset families (Section 7.1).
//
// Usage:
//
//	spqgen -dataset uniform -n 100000 -out un.txt
//	spqgen -dataset twitter -n 50000 -out tw.txt -stats
//
// The output file mixes data objects (lines starting with D) and feature
// objects (lines starting with F); feed it to spqrun or Engine.LoadFile.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"spq/internal/data"
)

func main() {
	var (
		dataset = flag.String("dataset", "uniform", "dataset family: uniform, clustered, flickr, twitter")
		n       = flag.Int("n", 100000, "total number of objects (half data, half features)")
		out     = flag.String("out", "", "output file (default stdout)")
		seed    = flag.Int64("seed", 0, "override the family's default generation seed")
		stats   = flag.Bool("stats", false, "print dataset statistics to stderr")
	)
	flag.Parse()

	var spec data.Spec
	switch *dataset {
	case "uniform":
		spec = data.UniformSpec(*n)
	case "clustered":
		spec = data.ClusteredSpec(*n)
	case "flickr":
		spec = data.FlickrSpec(*n)
	case "twitter":
		spec = data.TwitterSpec(*n)
	default:
		fmt.Fprintf(os.Stderr, "spqgen: unknown dataset %q (want uniform, clustered, flickr or twitter)\n", *dataset)
		os.Exit(2)
	}
	if *seed != 0 {
		spec.Seed = *seed
	}
	ds := data.Generate(spec)

	w := bufio.NewWriter(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "spqgen: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w = bufio.NewWriter(f)
	}
	for _, o := range ds.Objects() {
		if err := data.EncodeLine(w, o, ds.Dict); err != nil {
			fmt.Fprintf(os.Stderr, "spqgen: %v\n", err)
			os.Exit(1)
		}
	}
	if err := w.Flush(); err != nil {
		fmt.Fprintf(os.Stderr, "spqgen: %v\n", err)
		os.Exit(1)
	}
	if *stats {
		fmt.Fprintln(os.Stderr, ds.ComputeStats())
	}
}
