package main

import (
	"fmt"
	"runtime"

	"spq"
	"spq/internal/bench"
)

// runChaos proves the fault-tolerance story end to end on one engine:
//
//  1. a fault-free reference engine answers the query mix serially;
//  2. a chaos engine over the same data — seeded transient read errors,
//     one corrupted replica of every 4th block, nodes crashing and
//     reviving on a read-count schedule — must answer the same mix with
//     byte-identical results, query by query;
//  3. a node is killed for good; Repair re-replicates its blocks and the
//     mix is replayed once more against the shrunken cluster.
//
// Every decision replays from -chaos-seed, so a reported divergence is a
// complete reproduction recipe.
func runChaos(seed int64, quick bool) error {
	size, queries := 20000, 120
	if quick {
		size, queries = 4000, 24
	}
	slots := runtime.NumCPU()
	base := spq.Config{
		Storage:   spq.StorageDFS,
		Nodes:     8,
		BlockSize: 16 << 10,
		MapSlots:  slots, ReduceSlots: slots,
		QueryCache:  -1, // every query must touch storage
		MaxAttempts: 5,
		Seed:        42,
	}
	build := func(cfg spq.Config) (*spq.Engine, error) {
		e := spq.NewEngine(cfg)
		if err := e.LoadSynthetic("clustered", size); err != nil {
			return nil, err
		}
		if err := e.Seal(); err != nil {
			return nil, err
		}
		return e, nil
	}

	ref, err := build(base)
	if err != nil {
		return err
	}
	kws := ref.FrequentKeywords(64)
	query := func(i int) spq.Query {
		return spq.Query{K: 10, Radius: 0.02, Keywords: bench.RotatingKeywords(kws, i)}
	}
	runOn := func(e *spq.Engine) bench.QueryFunc {
		return func(i int) (string, error) {
			res, err := e.Query(query(i%queries), spq.WithAutoPlan())
			return fmt.Sprint(res), err
		}
	}

	fmt.Printf("# chaos — clustered %d objects, %d distinct queries, seed %d, %d slots\n",
		size, queries, seed, slots)
	refPoint, refFPs, err := bench.RunConcurrent(queries, 1, runOn(ref))
	if err != nil {
		return err
	}
	fmt.Println(bench.FormatConcurrencyPoint("fault-free reference", refPoint, refPoint))

	cfg := base
	cfg.Faults = &spq.FaultPlan{
		Seed:              seed,
		TransientReadProb: 0.05,
		CorruptEveryN:     4,
		// One node down at a time, so every block keeps a healthy replica.
		Crashes: []spq.CrashEvent{
			{AtRead: 50, Node: 1},
			{AtRead: 400, Node: 1, Revive: true},
			{AtRead: 800, Node: 5},
			{AtRead: 1600, Node: 5, Revive: true},
		},
	}
	chaosEng, err := build(cfg)
	if err != nil {
		return err
	}
	faulted, faultedFPs, err := bench.RunConcurrent(queries, 4, runOn(chaosEng))
	if err != nil {
		return fmt.Errorf("query under injected faults: %w", err)
	}
	fmt.Println(bench.FormatConcurrencyPoint("under injected faults", faulted, refPoint))
	if i := bench.DiffFingerprints(refFPs, faultedFPs); i >= 0 {
		return fmt.Errorf("query %d differs between the chaos engine and the fault-free reference", i)
	}
	fs := chaosEng.FaultStats()
	fmt.Printf("faults: %d transient read errors, %d corruptions injected / %d detected, %d replicas quarantined, %d failover reads\n",
		fs.TransientReadErrors, fs.CorruptionsInjected, fs.CorruptionsDetected,
		fs.ReplicasQuarantined, fs.FailoverReads)

	// Permanent node loss, then self-healing.
	if err := chaosEng.KillNode(2); err != nil {
		return err
	}
	st := chaosEng.Repair()
	fmt.Printf("repair after killing node 2: %d blocks re-replicated, %d replicas added, %d dropped, %d unrecoverable\n",
		st.BlocksRepaired, st.ReplicasAdded, st.ReplicasDropped, st.Unrecoverable)
	if st.Unrecoverable > 0 {
		return fmt.Errorf("repair left %d unrecoverable blocks with %d live nodes", st.Unrecoverable, chaosEng.NumNodes()-1)
	}
	healed, healedFPs, err := bench.RunConcurrent(queries, 4, runOn(chaosEng))
	if err != nil {
		return fmt.Errorf("query after node loss and repair: %w", err)
	}
	fmt.Println(bench.FormatConcurrencyPoint("after node loss + repair", healed, refPoint))
	if i := bench.DiffFingerprints(refFPs, healedFPs); i >= 0 {
		return fmt.Errorf("query %d differs after node loss and repair", i)
	}
	fmt.Println("results: chaos engine identical to fault-free reference, query by query")

	// Phase 4 — worker-kill drill: the same workload on real worker
	// processes, with the fault plan severing two of the three workers
	// mid-workload. The master re-executes their lost tasks on survivors;
	// results must stay byte-identical and the re-executions metered.
	addrs, stopWorkers, err := spawnWorkers(3, 2)
	if err != nil {
		return err
	}
	defer stopWorkers()
	dcfg := base
	dcfg.Workers = addrs
	dcfg.Faults = &spq.FaultPlan{
		Seed: seed,
		WorkerKills: []spq.WorkerKillEvent{
			{Worker: "worker-1", AfterTasks: 2 + int(seed%5)},
			{Worker: "worker-2", AfterTasks: 9 + int(seed%7)},
		},
	}
	dist, err := build(dcfg)
	if err != nil {
		return err
	}
	defer dist.Close()
	var counters execCounters
	killed, killedFPs, err := bench.RunConcurrent(queries, 4, func(i int) (string, error) {
		rep, err := dist.QueryReport(query(i%queries), spq.WithAutoPlan())
		if err != nil {
			return "", err
		}
		counters.add(rep.Counters)
		return fmt.Sprint(rep.Results), nil
	})
	if err != nil {
		return fmt.Errorf("query under worker kills: %w", err)
	}
	fmt.Println(bench.FormatConcurrencyPoint("under worker kills", killed, refPoint))
	if i := bench.DiffFingerprints(refFPs, killedFPs); i >= 0 {
		return fmt.Errorf("query %d differs after losing workers mid-workload", i)
	}
	lost, reexec := counters.get(spq.CounterExecWorkersLost), counters.get(spq.CounterExecReexec)
	if lost == 0 || reexec == 0 {
		return fmt.Errorf("kill plan fired no losses or re-executions (lost=%d reexec=%d)", lost, reexec)
	}
	fmt.Printf("exec: %d workers lost, %d task re-executions on survivors\n", lost, reexec)
	fmt.Println("results: distributed engine identical under worker loss, query by query")
	return nil
}
