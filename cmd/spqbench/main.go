// Command spqbench regenerates the paper's evaluation figures (Section 7)
// on the in-process simulated cluster. Each figure is printed as a text
// table with one row per swept x-value and one column (series) per
// algorithm, mirroring the plots of the paper.
//
// Usage:
//
//	spqbench -fig all                 # every figure (the default)
//	spqbench -fig 5a                  # one panel
//	spqbench -fig 8 -scale-unit 1000  # larger scalability sweep
//	spqbench -quick                   # endpoints of each sweep only
//	spqbench -json > BENCH_all.json   # machine-readable results
//	spqbench -concurrency 8           # serving throughput: N concurrent
//	                                  # clients vs the serial baseline,
//	                                  # plus the cached repeated workload
//	spqbench -chaos -chaos-seed 7     # replay the workload under seeded
//	                                  # fault injection and node loss,
//	                                  # proving result identity
//	spqbench -churn -chaos-seed 7     # distributed workload under seeded
//	                                  # worker churn (kill/drain/join) and
//	                                  # a 20x straggler; requires at least
//	                                  # one speculative win
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"spq"
	"spq/internal/bench"
)

func main() {
	var (
		fig      = flag.String("fig", "all", "figure id (5a..5d, 6a..6d, 7a..7d, 8, 9a..9d, df, lb, sh) or 'all'")
		sizeReal = flag.Int("size-real", 0, "objects for FL/TW surrogates (default 150000)")
		sizeSyn  = flag.Int("size-syn", 0, "objects for UN/CL (default 100000)")
		unit     = flag.Int("scale-unit", 0, "Figure 8 size step (default 400: sizes 25600..204800)")
		mapSlots = flag.Int("map-slots", 0, "map worker slots (default NumCPU)")
		redSlots = flag.Int("reduce-slots", 0, "reduce worker slots (default NumCPU)")
		quick    = flag.Bool("quick", false, "run only the endpoints of each sweep")
		repeat   = flag.Int("repeat", 1, "run each measured cell N times and keep the fastest (use 3+ when comparing BENCH_*.json trajectories)")
		legacy   = flag.Bool("legacy", false, "measure the pre-SPQ2 path (unplanned full scan) instead of the planned columnar serving path")
		segment  = flag.String("segment", "", "columnar segment format for the planned path: spq3 (compressed, default) or spq2")
		verify   = flag.Bool("verify", false, "prove result identity of every measured cell against the full-scan reference (rows gain \"verified\": true)")
		counters = flag.Bool("counters", false, "also print features-examined counters per figure")
		jsonOut  = flag.Bool("json", false, "emit results as a JSON array of rows (figure, series, x, millis, counters) instead of tables")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile of the figure runs to this file")
		conc     = flag.Int("concurrency", 0, "serving-throughput mode: run the concurrent-query workload with this many clients (skips the figures)")
		appendN  = flag.Int("append", 0, "append-while-serving mode: run the query workload with this many clients while a writer streams records into the sealed engine (skips the figures)")
		chaos    = flag.Bool("chaos", false, "chaos mode: replay the query workload under seeded DFS fault injection and node loss, proving result identity against a fault-free reference (skips the figures)")
		chaosSd  = flag.Int64("chaos-seed", 1, "fault-plan seed for -chaos; every run replays deterministically from it")
		workers  = flag.Int("workers", 0, "distributed mode: run the query workload on this many spawned worker processes over net/rpc, proving result identity against the in-process engine (skips the figures)")
		churn    = flag.Bool("churn", false, "churn mode: run the distributed workload while workers are killed, drained, joined, and slowed 20x under -chaos-seed, proving result identity and speculative wins (skips the figures)")

		// Internal flags of the worker child processes behind -workers.
		runWorker   = flag.Bool("run-worker", false, "internal: serve as a spawned worker process")
		workerSlots = flag.Int("worker-slots", 0, "internal: task slots for -run-worker")
	)
	flag.Parse()

	if *runWorker {
		if err := runWorkerMode(*workerSlots); err != nil {
			fmt.Fprintf(os.Stderr, "spqbench worker: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *workers > 0 {
		if err := runDistributed(*workers, *quick); err != nil {
			fmt.Fprintf(os.Stderr, "spqbench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *churn {
		if err := runChurn(*chaosSd, *quick); err != nil {
			fmt.Fprintf(os.Stderr, "spqbench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *chaos {
		if err := runChaos(*chaosSd, *quick); err != nil {
			fmt.Fprintf(os.Stderr, "spqbench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *appendN > 0 {
		if err := runAppend(*appendN, *quick); err != nil {
			fmt.Fprintf(os.Stderr, "spqbench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *conc > 0 {
		if err := runConcurrency(*conc, *quick); err != nil {
			fmt.Fprintf(os.Stderr, "spqbench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	h := bench.New(bench.Config{
		SizeReal:      *sizeReal,
		SizeSynthetic: *sizeSyn,
		ScaleUnit:     *unit,
		MapSlots:      *mapSlots,
		ReduceSlots:   *redSlots,
		Quick:         *quick,
		Repeat:        *repeat,
		Legacy:        *legacy,
		Segment:       *segment,
		Verify:        *verify,
	})

	ids := bench.FigureIDs()
	if *fig != "all" {
		ids = []string{*fig}
	}
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintf(os.Stderr, "spqbench: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "spqbench: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	start := time.Now()
	var figures []*bench.Figure
	for _, id := range ids {
		t0 := time.Now()
		figure, err := h.Run(id)
		if err != nil {
			fmt.Fprintf(os.Stderr, "spqbench: %v\n", err)
			os.Exit(1)
		}
		if *jsonOut {
			figures = append(figures, figure)
			fmt.Fprintf(os.Stderr, "(figure %s took %.1fs)\n", id, time.Since(t0).Seconds())
			continue
		}
		figure.WriteTable(os.Stdout)
		if *counters {
			figure.WriteCounters(os.Stdout)
		}
		fmt.Printf("(figure %s took %.1fs)\n\n", id, time.Since(t0).Seconds())
	}
	if *jsonOut {
		if err := bench.WriteJSON(os.Stdout, figures); err != nil {
			fmt.Fprintf(os.Stderr, "spqbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "total: %.1fs\n", time.Since(start).Seconds())
		return
	}
	fmt.Printf("total: %.1fs\n", time.Since(start).Seconds())
}

// appendWorkload deterministically generates the records of the append
// phase: uniform locations over the unit square, 1–3 keywords per feature
// from a 64-word vocabulary. Returned vocab feeds the query mix.
func appendWorkload(n int) (dataObjs []spq.DataObject, feats []spq.Feature, vocab []string) {
	vocab = make([]string, 64)
	for i := range vocab {
		vocab[i] = fmt.Sprintf("kw%02d", i)
	}
	r := rand.New(rand.NewSource(17))
	dataObjs = make([]spq.DataObject, n/2)
	feats = make([]spq.Feature, n-n/2)
	for i := range dataObjs {
		dataObjs[i] = spq.DataObject{ID: uint64(i + 1), X: r.Float64(), Y: r.Float64()}
	}
	for i := range feats {
		kws := make([]string, 1+r.Intn(3))
		for j := range kws {
			kws[j] = vocab[r.Intn(len(vocab))]
		}
		feats[i] = spq.Feature{ID: uint64(i + 1), X: r.Float64(), Y: r.Float64(), Keywords: kws}
	}
	return dataObjs, feats, vocab
}

// runAppend measures the generational-ingestion serving path: aggregate
// QPS with N query clients against one engine while a writer goroutine
// streams the second half of the dataset into the sealed base, with
// automatic compactions folding the delta into fresh generations along the
// way. Three phases:
//
//  1. N clients over the static sealed base — the baseline QPS;
//  2. the same query mix repeated while the writer appends — the
//     append-under-load QPS, plus generation/compaction accounting;
//  3. after a final compaction, a query-by-query proof that the engine
//     serves exactly the results of a reference engine that loaded
//     everything pre-seal in one batch.
func runAppend(clients int, quick bool) error {
	size, queries := 60000, 240
	if quick {
		size, queries = 8000, 48
	}
	slots := runtime.NumCPU()
	dataObjs, feats, vocab := appendWorkload(size)
	half, fhalf := len(dataObjs)/2, len(feats)/2
	cfg := spq.Config{
		Storage:     spq.StorageMemory,
		MapSlots:    slots,
		ReduceSlots: slots,
		// A few automatic compactions during the stream: the threshold is
		// an eighth of the records the writer appends.
		CompactAfter: (len(dataObjs) - half + len(feats) - fhalf) / 8,
	}
	eng := spq.NewEngine(cfg)
	if err := eng.AddData(dataObjs[:half]...); err != nil {
		return err
	}
	if err := eng.AddFeature(feats[:fhalf]...); err != nil {
		return err
	}
	if err := eng.Seal(); err != nil {
		return err
	}
	baseGen := eng.Generation()

	query := func(i int) spq.Query {
		return spq.Query{K: 10, Radius: 0.02, Keywords: bench.RotatingKeywords(vocab, i)}
	}
	// Both measured phases bypass the cache: between append commits the
	// generation is stable and repeats would be cache hits, which measures
	// the cache instead of the delta-merging read path under comparison.
	run := func(i int) (string, error) {
		res, err := eng.Query(query(i%queries), spq.WithAutoPlan(), spq.WithCache(false))
		return fmt.Sprint(res), err
	}

	fmt.Printf("# append — uniform %d records (half sealed, half streamed), %d distinct queries, %d slots, compact-after %d\n",
		size, queries, slots, cfg.CompactAfter)
	static, _, err := bench.RunConcurrent(queries, clients, run)
	if err != nil {
		return err
	}
	fmt.Println(bench.FormatConcurrencyPoint("static base", static, static))

	// Phase 2: the writer streams the second half in small batches while
	// the clients keep querying; every committed batch bumps the
	// generation, so cache hits are only possible between consecutive
	// commits — the worst case for the cache, the target case for the
	// delta path.
	const batch = 500
	var (
		writerErr error
		done      = make(chan struct{})
	)
	go func() {
		defer close(done)
		d, f := dataObjs[half:], feats[fhalf:]
		for len(d) > 0 || len(f) > 0 {
			nd := min(batch, len(d))
			if nd > 0 {
				if writerErr = eng.AddData(d[:nd]...); writerErr != nil {
					return
				}
				d = d[nd:]
			}
			nf := min(batch, len(f))
			if nf > 0 {
				if writerErr = eng.AddFeature(f[:nf]...); writerErr != nil {
					return
				}
				f = f[nf:]
			}
		}
	}()
	appendQueries := 0
	start := time.Now()
	for {
		p, _, err := bench.RunConcurrent(queries, clients, run)
		if err != nil {
			return err
		}
		appendQueries += p.Queries
		select {
		case <-done:
		default:
			continue
		}
		break
	}
	elapsed := time.Since(start)
	if writerErr != nil {
		return fmt.Errorf("writer: %w", writerErr)
	}
	during := bench.ConcurrencyPoint{
		Clients: clients,
		Queries: appendQueries,
		Millis:  float64(elapsed.Microseconds()) / 1000,
	}
	if s := elapsed.Seconds(); s > 0 {
		during.QPS = float64(appendQueries) / s
	}
	fmt.Println(bench.FormatConcurrencyPoint("while appending", during, static))
	fmt.Printf("generations: %d -> %d (%d delta records uncompacted)\n",
		baseGen, eng.Generation(), eng.DeltaLen())

	// Phase 3: fold the tail in and prove result identity against a
	// reference engine that loaded everything pre-seal.
	if err := eng.Compact(); err != nil {
		return err
	}
	ref := spq.NewEngine(spq.Config{Storage: spq.StorageMemory, MapSlots: slots, ReduceSlots: slots})
	if err := ref.AddData(dataObjs...); err != nil {
		return err
	}
	if err := ref.AddFeature(feats...); err != nil {
		return err
	}
	if err := ref.Seal(); err != nil {
		return err
	}
	runOn := func(e *spq.Engine) bench.QueryFunc {
		return func(i int) (string, error) {
			res, err := e.Query(query(i%queries), spq.WithAutoPlan(), spq.WithCache(false))
			return fmt.Sprint(res), err
		}
	}
	_, wantFPs, err := bench.RunConcurrent(queries, 1, runOn(ref))
	if err != nil {
		return err
	}
	_, gotFPs, err := bench.RunConcurrent(queries, 1, runOn(eng))
	if err != nil {
		return err
	}
	if i := bench.DiffFingerprints(wantFPs, gotFPs); i >= 0 {
		return fmt.Errorf("query %d differs between the appended+compacted engine and the pre-seal batch reference", i)
	}
	fmt.Println("results: appended+compacted engine identical to pre-seal batch load, query by query")
	return nil
}

// runConcurrency measures the serving stack: aggregate QPS with N
// concurrent clients against one shared engine, compared to a 1-client
// serial baseline. Three phases:
//
//  1. serial, cache bypassed — the baseline QPS;
//  2. N clients, cache bypassed — slot-pool sharing only, and a
//     query-by-query proof that concurrent results are identical to
//     serial ones;
//  3. N clients on the repeated workload with the cache on — the steady
//     serving state, where repeats are cache hits.
func runConcurrency(clients int, quick bool) error {
	size, queries := 60000, 240
	if quick {
		size, queries = 8000, 48
	}
	slots := runtime.NumCPU()
	eng := spq.NewEngine(spq.Config{Storage: spq.StorageMemory, MapSlots: slots, ReduceSlots: slots})
	if err := eng.LoadSynthetic("uniform", size); err != nil {
		return err
	}
	if err := eng.Seal(); err != nil {
		return err
	}
	kws := eng.FrequentKeywords(64)
	if len(kws) < 16 {
		return fmt.Errorf("concurrency workload: only %d keywords", len(kws))
	}
	// Distinct query mix: bench.RotatingKeywords guarantees no query
	// repeats within one pass — a repeat would let the cache flatter the
	// no-cache phases.
	query := func(i int) spq.Query {
		return spq.Query{K: 10, Radius: 0.02, Keywords: bench.RotatingKeywords(kws, i)}
	}
	run := func(cache bool) bench.QueryFunc {
		return func(i int) (string, error) {
			opts := []spq.QueryOption{spq.WithAutoPlan()}
			if !cache {
				opts = append(opts, spq.WithCache(false))
			}
			res, err := eng.Query(query(i%queries), opts...)
			return fmt.Sprint(res), err
		}
	}

	fmt.Printf("# concurrency — uniform %d objects, %d distinct queries, %d slots\n", size, queries, slots)
	serial, serialFPs, err := bench.RunConcurrent(queries, 1, run(false))
	if err != nil {
		return err
	}
	fmt.Println(bench.FormatConcurrencyPoint("serial (no cache)", serial, serial))

	conc, concFPs, err := bench.RunConcurrent(queries, clients, run(false))
	if err != nil {
		return err
	}
	fmt.Println(bench.FormatConcurrencyPoint("concurrent (no cache)", conc, serial))
	if i := bench.DiffFingerprints(serialFPs, concFPs); i >= 0 {
		return fmt.Errorf("concurrent query %d returned different results than serial execution", i)
	}
	fmt.Println("results: concurrent execution identical to serial, query by query")

	// Cache phases. Cold: first pass over the distinct mix with the cache
	// on — every query executes and populates its entry. Hot: the same
	// workload repeated, the steady serving state where repeats are cache
	// hits.
	cold, coldFPs, err := bench.RunConcurrent(queries, clients, run(true))
	if err != nil {
		return err
	}
	fmt.Println(bench.FormatConcurrencyPoint("concurrent (cache, cold)", cold, serial))
	if i := bench.DiffFingerprints(serialFPs, coldFPs); i >= 0 {
		return fmt.Errorf("cached query %d returned different results than serial execution", i)
	}
	hot, hotFPs, err := bench.RunConcurrent(queries, clients, run(true))
	if err != nil {
		return err
	}
	fmt.Println(bench.FormatConcurrencyPoint("concurrent (cache, hot)", hot, serial))
	if i := bench.DiffFingerprints(serialFPs, hotFPs); i >= 0 {
		return fmt.Errorf("cache-hit query %d returned different results than serial execution", i)
	}
	cs := eng.CacheStats()
	fmt.Printf("cache: %d hits, %d misses, %d entries\n", cs.Hits, cs.Misses, cs.Entries)
	if cs.Hits == 0 {
		return fmt.Errorf("repeated workload produced no cache hits")
	}
	return nil
}
