// Command spqbench regenerates the paper's evaluation figures (Section 7)
// on the in-process simulated cluster. Each figure is printed as a text
// table with one row per swept x-value and one column (series) per
// algorithm, mirroring the plots of the paper.
//
// Usage:
//
//	spqbench -fig all                 # every figure (the default)
//	spqbench -fig 5a                  # one panel
//	spqbench -fig 8 -scale-unit 1000  # larger scalability sweep
//	spqbench -quick                   # endpoints of each sweep only
//	spqbench -json > BENCH_all.json   # machine-readable results
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"spq/internal/bench"
)

func main() {
	var (
		fig      = flag.String("fig", "all", "figure id (5a..5d, 6a..6d, 7a..7d, 8, 9a..9d, df, lb, sh) or 'all'")
		sizeReal = flag.Int("size-real", 0, "objects for FL/TW surrogates (default 150000)")
		sizeSyn  = flag.Int("size-syn", 0, "objects for UN/CL (default 100000)")
		unit     = flag.Int("scale-unit", 0, "Figure 8 size step (default 400: sizes 25600..204800)")
		mapSlots = flag.Int("map-slots", 0, "map worker slots (default NumCPU)")
		redSlots = flag.Int("reduce-slots", 0, "reduce worker slots (default NumCPU)")
		quick    = flag.Bool("quick", false, "run only the endpoints of each sweep")
		repeat   = flag.Int("repeat", 1, "run each measured cell N times and keep the fastest (use 3+ when comparing BENCH_*.json trajectories)")
		counters = flag.Bool("counters", false, "also print features-examined counters per figure")
		jsonOut  = flag.Bool("json", false, "emit results as a JSON array of rows (figure, series, x, millis, counters) instead of tables")
	)
	flag.Parse()

	h := bench.New(bench.Config{
		SizeReal:      *sizeReal,
		SizeSynthetic: *sizeSyn,
		ScaleUnit:     *unit,
		MapSlots:      *mapSlots,
		ReduceSlots:   *redSlots,
		Quick:         *quick,
		Repeat:        *repeat,
	})

	ids := bench.FigureIDs()
	if *fig != "all" {
		ids = []string{*fig}
	}
	start := time.Now()
	var figures []*bench.Figure
	for _, id := range ids {
		t0 := time.Now()
		figure, err := h.Run(id)
		if err != nil {
			fmt.Fprintf(os.Stderr, "spqbench: %v\n", err)
			os.Exit(1)
		}
		if *jsonOut {
			figures = append(figures, figure)
			fmt.Fprintf(os.Stderr, "(figure %s took %.1fs)\n", id, time.Since(t0).Seconds())
			continue
		}
		figure.WriteTable(os.Stdout)
		if *counters {
			figure.WriteCounters(os.Stdout)
		}
		fmt.Printf("(figure %s took %.1fs)\n\n", id, time.Since(t0).Seconds())
	}
	if *jsonOut {
		if err := bench.WriteJSON(os.Stdout, figures); err != nil {
			fmt.Fprintf(os.Stderr, "spqbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "total: %.1fs\n", time.Since(start).Seconds())
		return
	}
	fmt.Printf("total: %.1fs\n", time.Since(start).Seconds())
}
