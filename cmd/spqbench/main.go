// Command spqbench regenerates the paper's evaluation figures (Section 7)
// on the in-process simulated cluster. Each figure is printed as a text
// table with one row per swept x-value and one column (series) per
// algorithm, mirroring the plots of the paper.
//
// Usage:
//
//	spqbench -fig all                 # every figure (the default)
//	spqbench -fig 5a                  # one panel
//	spqbench -fig 8 -scale-unit 1000  # larger scalability sweep
//	spqbench -quick                   # endpoints of each sweep only
//	spqbench -json > BENCH_all.json   # machine-readable results
//	spqbench -concurrency 8           # serving throughput: N concurrent
//	                                  # clients vs the serial baseline,
//	                                  # plus the cached repeated workload
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"spq"
	"spq/internal/bench"
)

func main() {
	var (
		fig      = flag.String("fig", "all", "figure id (5a..5d, 6a..6d, 7a..7d, 8, 9a..9d, df, lb, sh) or 'all'")
		sizeReal = flag.Int("size-real", 0, "objects for FL/TW surrogates (default 150000)")
		sizeSyn  = flag.Int("size-syn", 0, "objects for UN/CL (default 100000)")
		unit     = flag.Int("scale-unit", 0, "Figure 8 size step (default 400: sizes 25600..204800)")
		mapSlots = flag.Int("map-slots", 0, "map worker slots (default NumCPU)")
		redSlots = flag.Int("reduce-slots", 0, "reduce worker slots (default NumCPU)")
		quick    = flag.Bool("quick", false, "run only the endpoints of each sweep")
		repeat   = flag.Int("repeat", 1, "run each measured cell N times and keep the fastest (use 3+ when comparing BENCH_*.json trajectories)")
		counters = flag.Bool("counters", false, "also print features-examined counters per figure")
		jsonOut  = flag.Bool("json", false, "emit results as a JSON array of rows (figure, series, x, millis, counters) instead of tables")
		conc     = flag.Int("concurrency", 0, "serving-throughput mode: run the concurrent-query workload with this many clients (skips the figures)")
	)
	flag.Parse()

	if *conc > 0 {
		if err := runConcurrency(*conc, *quick); err != nil {
			fmt.Fprintf(os.Stderr, "spqbench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	h := bench.New(bench.Config{
		SizeReal:      *sizeReal,
		SizeSynthetic: *sizeSyn,
		ScaleUnit:     *unit,
		MapSlots:      *mapSlots,
		ReduceSlots:   *redSlots,
		Quick:         *quick,
		Repeat:        *repeat,
	})

	ids := bench.FigureIDs()
	if *fig != "all" {
		ids = []string{*fig}
	}
	start := time.Now()
	var figures []*bench.Figure
	for _, id := range ids {
		t0 := time.Now()
		figure, err := h.Run(id)
		if err != nil {
			fmt.Fprintf(os.Stderr, "spqbench: %v\n", err)
			os.Exit(1)
		}
		if *jsonOut {
			figures = append(figures, figure)
			fmt.Fprintf(os.Stderr, "(figure %s took %.1fs)\n", id, time.Since(t0).Seconds())
			continue
		}
		figure.WriteTable(os.Stdout)
		if *counters {
			figure.WriteCounters(os.Stdout)
		}
		fmt.Printf("(figure %s took %.1fs)\n\n", id, time.Since(t0).Seconds())
	}
	if *jsonOut {
		if err := bench.WriteJSON(os.Stdout, figures); err != nil {
			fmt.Fprintf(os.Stderr, "spqbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "total: %.1fs\n", time.Since(start).Seconds())
		return
	}
	fmt.Printf("total: %.1fs\n", time.Since(start).Seconds())
}

// runConcurrency measures the serving stack: aggregate QPS with N
// concurrent clients against one shared engine, compared to a 1-client
// serial baseline. Three phases:
//
//  1. serial, cache bypassed — the baseline QPS;
//  2. N clients, cache bypassed — slot-pool sharing only, and a
//     query-by-query proof that concurrent results are identical to
//     serial ones;
//  3. N clients on the repeated workload with the cache on — the steady
//     serving state, where repeats are cache hits.
func runConcurrency(clients int, quick bool) error {
	size, queries := 60000, 240
	if quick {
		size, queries = 8000, 48
	}
	slots := runtime.NumCPU()
	eng := spq.NewEngine(spq.Config{Storage: spq.StorageMemory, MapSlots: slots, ReduceSlots: slots})
	if err := eng.LoadSynthetic("uniform", size); err != nil {
		return err
	}
	if err := eng.Seal(); err != nil {
		return err
	}
	kws := eng.FrequentKeywords(64)
	if len(kws) < 16 {
		return fmt.Errorf("concurrency workload: only %d keywords", len(kws))
	}
	// Distinct query mix: bench.RotatingKeywords guarantees no query
	// repeats within one pass — a repeat would let the cache flatter the
	// no-cache phases.
	query := func(i int) spq.Query {
		return spq.Query{K: 10, Radius: 0.02, Keywords: bench.RotatingKeywords(kws, i)}
	}
	run := func(cache bool) bench.QueryFunc {
		return func(i int) (string, error) {
			opts := []spq.QueryOption{spq.WithAutoPlan()}
			if !cache {
				opts = append(opts, spq.WithoutCache())
			}
			res, err := eng.Query(query(i%queries), opts...)
			return fmt.Sprint(res), err
		}
	}

	fmt.Printf("# concurrency — uniform %d objects, %d distinct queries, %d slots\n", size, queries, slots)
	serial, serialFPs, err := bench.RunConcurrent(queries, 1, run(false))
	if err != nil {
		return err
	}
	fmt.Println(bench.FormatConcurrencyPoint("serial (no cache)", serial, serial))

	conc, concFPs, err := bench.RunConcurrent(queries, clients, run(false))
	if err != nil {
		return err
	}
	fmt.Println(bench.FormatConcurrencyPoint("concurrent (no cache)", conc, serial))
	if i := bench.DiffFingerprints(serialFPs, concFPs); i >= 0 {
		return fmt.Errorf("concurrent query %d returned different results than serial execution", i)
	}
	fmt.Println("results: concurrent execution identical to serial, query by query")

	// Cache phases. Cold: first pass over the distinct mix with the cache
	// on — every query executes and populates its entry. Hot: the same
	// workload repeated, the steady serving state where repeats are cache
	// hits.
	cold, coldFPs, err := bench.RunConcurrent(queries, clients, run(true))
	if err != nil {
		return err
	}
	fmt.Println(bench.FormatConcurrencyPoint("concurrent (cache, cold)", cold, serial))
	if i := bench.DiffFingerprints(serialFPs, coldFPs); i >= 0 {
		return fmt.Errorf("cached query %d returned different results than serial execution", i)
	}
	hot, hotFPs, err := bench.RunConcurrent(queries, clients, run(true))
	if err != nil {
		return err
	}
	fmt.Println(bench.FormatConcurrencyPoint("concurrent (cache, hot)", hot, serial))
	if i := bench.DiffFingerprints(serialFPs, hotFPs); i >= 0 {
		return fmt.Errorf("cache-hit query %d returned different results than serial execution", i)
	}
	cs := eng.CacheStats()
	fmt.Printf("cache: %d hits, %d misses, %d entries\n", cs.Hits, cs.Misses, cs.Entries)
	if cs.Hits == 0 {
		return fmt.Errorf("repeated workload produced no cache hits")
	}
	return nil
}
