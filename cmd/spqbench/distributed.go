package main

import (
	"bufio"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"sort"
	"strings"
	"sync"

	"spq"
	"spq/internal/bench"
	"spq/internal/mapreduce"
)

// Distributed mode (-workers N): the same query workload answered twice —
// once by an in-process engine, once by an engine whose MapReduce tasks
// run on N real spawned worker processes over net/rpc — with a
// query-by-query fingerprint proof that the two are byte-identical.

// runWorkerMode is the hidden child-process mode behind -workers: serve
// tasks until the parent kills us. The first stdout line carries the
// listen address for the parent to scrape.
func runWorkerMode(slots int) error {
	if slots <= 0 {
		slots = runtime.NumCPU()
	}
	w, err := mapreduce.StartWorker("127.0.0.1:0", slots)
	if err != nil {
		return err
	}
	fmt.Printf("listening %s\n", w.Addr())
	select {}
}

// spawnWorkers re-execs this binary n times in worker mode and scrapes
// each child's listen address. stop kills and reaps every child.
func spawnWorkers(n, slots int) (addrs []string, stop func(), err error) {
	var cmds []*exec.Cmd
	stop = func() {
		for _, c := range cmds {
			c.Process.Kill()
			c.Wait()
		}
	}
	defer func() {
		if err != nil {
			stop()
		}
	}()
	for i := 0; i < n; i++ {
		cmd := exec.Command(os.Args[0], "-run-worker", fmt.Sprintf("-worker-slots=%d", slots))
		cmd.Stderr = os.Stderr
		out, perr := cmd.StdoutPipe()
		if perr != nil {
			return nil, stop, perr
		}
		if serr := cmd.Start(); serr != nil {
			return nil, stop, serr
		}
		cmds = append(cmds, cmd)
		line, rerr := bufio.NewReader(out).ReadString('\n')
		if rerr != nil {
			return nil, stop, fmt.Errorf("worker %d produced no address: %w", i+1, rerr)
		}
		addr := strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(line), "listening "))
		if addr == "" {
			return nil, stop, fmt.Errorf("worker %d printed %q, want \"listening <addr>\"", i+1, line)
		}
		addrs = append(addrs, addr)
	}
	return addrs, stop, nil
}

// countingQueryFunc wraps QueryReport as a bench.QueryFunc while
// accumulating the spq.exec.* counters across the workload.
type execCounters struct {
	mu sync.Mutex
	m  map[string]int64
}

func (c *execCounters) add(counters map[string]int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for k, v := range counters {
		if strings.HasPrefix(k, "spq.exec.") {
			if c.m == nil {
				c.m = make(map[string]int64)
			}
			c.m[k] += v
		}
	}
}

func (c *execCounters) get(k string) int64 { return c.m[k] }

func (c *execCounters) printTasks(w *strings.Builder) {
	keys := make([]string, 0, len(c.m))
	for k := range c.m {
		if strings.HasPrefix(k, spq.CounterExecTasksPrefix) {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, " %s=%d", strings.TrimPrefix(k, spq.CounterExecTasksPrefix), c.m[k])
	}
}

func runDistributed(workers int, quick bool) error {
	size, queries := 60000, 240
	if quick {
		size, queries = 8000, 48
	}
	slots := runtime.NumCPU()
	base := spq.Config{
		Storage:   spq.StorageDFSBinary,
		Nodes:     4,
		BlockSize: 64 << 10,
		MapSlots:  slots, ReduceSlots: slots,
		QueryCache: -1, // every query must run a job, not hit the cache
	}
	build := func(cfg spq.Config) (*spq.Engine, error) {
		e := spq.NewEngine(cfg)
		if err := e.LoadSynthetic("clustered", size); err != nil {
			return nil, err
		}
		if err := e.Seal(); err != nil {
			return nil, err
		}
		return e, nil
	}

	ref, err := build(base)
	if err != nil {
		return err
	}
	kws := ref.FrequentKeywords(64)
	if len(kws) < 16 {
		return fmt.Errorf("distributed workload: only %d keywords", len(kws))
	}
	query := func(i int) spq.Query {
		return spq.Query{K: 10, Radius: 0.02, Keywords: bench.RotatingKeywords(kws, i)}
	}

	fmt.Printf("# distributed — clustered %d objects, %d distinct queries, %d worker processes\n",
		size, queries, workers)
	refPoint, refFPs, err := bench.RunConcurrent(queries, 1, func(i int) (string, error) {
		res, err := ref.Query(query(i%queries), spq.WithAutoPlan())
		return fmt.Sprint(res), err
	})
	if err != nil {
		return err
	}
	fmt.Println(bench.FormatConcurrencyPoint("in-process", refPoint, refPoint))

	perWorker := slots / workers
	if perWorker < 1 {
		perWorker = 1
	}
	addrs, stopWorkers, err := spawnWorkers(workers, perWorker)
	if err != nil {
		return err
	}
	defer stopWorkers()

	cfg := base
	cfg.Workers = addrs
	dist, err := build(cfg)
	if err != nil {
		return err
	}
	defer dist.Close()

	var counters execCounters
	distPoint, distFPs, err := bench.RunConcurrent(queries, 4, func(i int) (string, error) {
		rep, err := dist.QueryReport(query(i%queries), spq.WithAutoPlan())
		if err != nil {
			return "", err
		}
		counters.add(rep.Counters)
		return fmt.Sprint(rep.Results), nil
	})
	if err != nil {
		return fmt.Errorf("distributed query: %w", err)
	}
	fmt.Println(bench.FormatConcurrencyPoint(fmt.Sprintf("%d worker processes", workers), distPoint, refPoint))

	if i := bench.DiffFingerprints(refFPs, distFPs); i >= 0 {
		return fmt.Errorf("query %d differs between the distributed engine and the in-process reference", i)
	}
	var tasks strings.Builder
	counters.printTasks(&tasks)
	fmt.Printf("exec: tasks%s, %.1f MB over RPC, %d local fallbacks\n",
		tasks.String(),
		float64(counters.get(spq.CounterExecRPCBytes))/(1<<20),
		counters.get(spq.CounterExecFallbackLocal))
	fmt.Println("results: distributed engine identical to in-process, query by query")
	return nil
}
