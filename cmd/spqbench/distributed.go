package main

import (
	"bufio"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"spq"
	"spq/internal/bench"
	"spq/internal/mapreduce"
)

// Distributed mode (-workers N): the same query workload answered twice —
// once by an in-process engine, once by an engine whose MapReduce tasks
// run on N real spawned worker processes over net/rpc — with a
// query-by-query fingerprint proof that the two are byte-identical.

// runWorkerMode is the hidden child-process mode behind -workers: serve
// tasks until the parent kills us. The first stdout line carries the
// listen address for the parent to scrape.
func runWorkerMode(slots int) error {
	if slots <= 0 {
		slots = runtime.NumCPU()
	}
	w, err := mapreduce.StartWorker("127.0.0.1:0", slots)
	if err != nil {
		return err
	}
	fmt.Printf("listening %s\n", w.Addr())
	select {}
}

// spawnWorkers re-execs this binary n times in worker mode and scrapes
// each child's listen address. stop kills and reaps every child.
func spawnWorkers(n, slots int) (addrs []string, stop func(), err error) {
	var cmds []*exec.Cmd
	stop = func() {
		for _, c := range cmds {
			c.Process.Kill()
			c.Wait()
		}
	}
	defer func() {
		if err != nil {
			stop()
		}
	}()
	for i := 0; i < n; i++ {
		cmd := exec.Command(os.Args[0], "-run-worker", fmt.Sprintf("-worker-slots=%d", slots))
		cmd.Stderr = os.Stderr
		out, perr := cmd.StdoutPipe()
		if perr != nil {
			return nil, stop, perr
		}
		if serr := cmd.Start(); serr != nil {
			return nil, stop, serr
		}
		cmds = append(cmds, cmd)
		line, rerr := bufio.NewReader(out).ReadString('\n')
		if rerr != nil {
			return nil, stop, fmt.Errorf("worker %d produced no address: %w", i+1, rerr)
		}
		addr := strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(line), "listening "))
		if addr == "" {
			return nil, stop, fmt.Errorf("worker %d printed %q, want \"listening <addr>\"", i+1, line)
		}
		addrs = append(addrs, addr)
	}
	return addrs, stop, nil
}

// countingQueryFunc wraps QueryReport as a bench.QueryFunc while
// accumulating the spq.exec.* counters across the workload.
type execCounters struct {
	mu sync.Mutex
	m  map[string]int64
}

func (c *execCounters) add(counters map[string]int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for k, v := range counters {
		if strings.HasPrefix(k, "spq.exec.") {
			if c.m == nil {
				c.m = make(map[string]int64)
			}
			c.m[k] += v
		}
	}
}

func (c *execCounters) get(k string) int64 { return c.m[k] }

func (c *execCounters) printTasks(w *strings.Builder) {
	keys := make([]string, 0, len(c.m))
	for k := range c.m {
		if strings.HasPrefix(k, spq.CounterExecTasksPrefix) {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, " %s=%d", strings.TrimPrefix(k, spq.CounterExecTasksPrefix), c.m[k])
	}
}

func runDistributed(workers int, quick bool) error {
	size, queries := 60000, 240
	if quick {
		size, queries = 8000, 48
	}
	slots := runtime.NumCPU()
	base := spq.Config{
		Storage:   spq.StorageDFSBinary,
		Nodes:     4,
		BlockSize: 64 << 10,
		MapSlots:  slots, ReduceSlots: slots,
		QueryCache: -1, // every query must run a job, not hit the cache
	}
	build := func(cfg spq.Config) (*spq.Engine, error) {
		e := spq.NewEngine(cfg)
		if err := e.LoadSynthetic("clustered", size); err != nil {
			return nil, err
		}
		if err := e.Seal(); err != nil {
			return nil, err
		}
		return e, nil
	}

	ref, err := build(base)
	if err != nil {
		return err
	}
	kws := ref.FrequentKeywords(64)
	if len(kws) < 16 {
		return fmt.Errorf("distributed workload: only %d keywords", len(kws))
	}
	query := func(i int) spq.Query {
		return spq.Query{K: 10, Radius: 0.02, Keywords: bench.RotatingKeywords(kws, i)}
	}

	fmt.Printf("# distributed — clustered %d objects, %d distinct queries, %d worker processes\n",
		size, queries, workers)
	refPoint, refFPs, err := bench.RunConcurrent(queries, 1, func(i int) (string, error) {
		res, err := ref.Query(query(i%queries), spq.WithAutoPlan())
		return fmt.Sprint(res), err
	})
	if err != nil {
		return err
	}
	fmt.Println(bench.FormatConcurrencyPoint("in-process", refPoint, refPoint))

	perWorker := slots / workers
	if perWorker < 1 {
		perWorker = 1
	}
	addrs, stopWorkers, err := spawnWorkers(workers, perWorker)
	if err != nil {
		return err
	}
	defer stopWorkers()

	cfg := base
	cfg.Workers = addrs
	dist, err := build(cfg)
	if err != nil {
		return err
	}
	defer dist.Close()

	var counters execCounters
	distPoint, distFPs, err := bench.RunConcurrent(queries, 4, func(i int) (string, error) {
		rep, err := dist.QueryReport(query(i%queries), spq.WithAutoPlan())
		if err != nil {
			return "", err
		}
		counters.add(rep.Counters)
		return fmt.Sprint(rep.Results), nil
	})
	if err != nil {
		return fmt.Errorf("distributed query: %w", err)
	}
	fmt.Println(bench.FormatConcurrencyPoint(fmt.Sprintf("%d worker processes", workers), distPoint, refPoint))

	if i := bench.DiffFingerprints(refFPs, distFPs); i >= 0 {
		return fmt.Errorf("query %d differs between the distributed engine and the in-process reference", i)
	}
	var tasks strings.Builder
	counters.printTasks(&tasks)
	fmt.Printf("exec: tasks%s, %.1f MB over RPC, %d local fallbacks\n",
		tasks.String(),
		float64(counters.get(spq.CounterExecRPCBytes))/(1<<20),
		counters.get(spq.CounterExecFallbackLocal))
	fmt.Println("results: distributed engine identical to in-process, query by query")
	return nil
}

// runChurn is the elastic-membership smoke (-churn): the distributed
// workload runs on 3 worker processes under a seeded churn schedule — one
// worker killed, one gracefully drained, a fourth joining mid-run, and one
// straggling at 20x the reference query latency — with speculative
// execution racing backups against the straggler. It proves query-by-query
// fingerprint identity against the in-process engine and requires at least
// one speculative win.
func runChurn(seed int64, quick bool) error {
	size, queries := 30000, 120
	if quick {
		size, queries = 8000, 48
	}
	// MapSlots=4 yields ~16 map tasks per job dispatched 4 at a time:
	// speculation needs completed-task duration samples from the first
	// dispatch waves before it can spot the straggler in later ones, so
	// each phase must span several waves.
	base := spq.Config{
		Storage:   spq.StorageDFSBinary,
		Nodes:     4,
		BlockSize: 8 << 10,
		MapSlots:  4, ReduceSlots: 2,
		QueryCache:  -1,
		MaxAttempts: 5,
	}
	build := func(cfg spq.Config) (*spq.Engine, error) {
		e := spq.NewEngine(cfg)
		if err := e.LoadSynthetic("clustered", size); err != nil {
			return nil, err
		}
		if err := e.Seal(); err != nil {
			return nil, err
		}
		return e, nil
	}

	ref, err := build(base)
	if err != nil {
		return err
	}
	kws := ref.FrequentKeywords(64)
	if len(kws) < 16 {
		return fmt.Errorf("churn workload: only %d keywords", len(kws))
	}
	query := func(i int) spq.Query {
		return spq.Query{K: 10, Radius: 0.02, Keywords: bench.RotatingKeywords(kws, i)}
	}

	fmt.Printf("# churn — clustered %d objects, %d distinct queries, 3+1 worker processes, seed %d\n",
		size, queries, seed)
	refPoint, refFPs, err := bench.RunConcurrent(queries, 1, func(i int) (string, error) {
		res, err := ref.Query(query(i%queries), spq.WithAutoPlan())
		return fmt.Sprint(res), err
	})
	if err != nil {
		return err
	}
	fmt.Println(bench.FormatConcurrencyPoint("in-process", refPoint, refPoint))

	// The straggler runs 20x slower than the reference query latency
	// (clamped to keep wall clock sane); speculation must beat it.
	slow := time.Duration(20*refPoint.Millis/float64(refPoint.Queries)) * time.Millisecond
	if slow < 50*time.Millisecond {
		slow = 50 * time.Millisecond
	}
	if slow > 250*time.Millisecond {
		slow = 250 * time.Millisecond
	}

	// Two slots per worker keeps lanes scarcer than tasks, forcing
	// multi-wave dispatch within each job.
	addrs, stopWorkers, err := spawnWorkers(4, 2)
	if err != nil {
		return err
	}
	defer stopWorkers()

	cfg := base
	cfg.Workers = addrs[:3]
	cfg.Speculation = &spq.SpeculationConfig{Multiple: 2, MinTasks: 2, MinDelay: 5 * time.Millisecond}
	cfg.Faults = &spq.FaultPlan{
		Seed: seed,
		WorkerKills: []spq.WorkerKillEvent{
			{Worker: "worker-1", AfterTasks: 10 + int(seed%10)},
		},
		WorkerJoins: []spq.WorkerJoinEvent{
			{Addr: addrs[3], Name: "joiner", AfterTasks: 6 + int(seed%5)},
		},
		WorkerDrains: []spq.WorkerDrainEvent{
			{Worker: "worker-2", AfterTasks: 20 + int(seed%10)},
		},
		WorkerSlowdowns: []spq.WorkerSlowdownEvent{
			{Worker: "worker-3", AfterTasks: 1, Delay: slow},
		},
	}
	churned, err := build(cfg)
	if err != nil {
		return err
	}
	defer churned.Close()

	var counters execCounters
	churnPoint, churnFPs, err := bench.RunConcurrent(queries, 4, func(i int) (string, error) {
		rep, err := churned.QueryReport(query(i%queries), spq.WithAutoPlan())
		if err != nil {
			return "", err
		}
		counters.add(rep.Counters)
		return fmt.Sprint(rep.Results), nil
	})
	if err != nil {
		return fmt.Errorf("churn query: %w", err)
	}
	fmt.Println(bench.FormatConcurrencyPoint(fmt.Sprintf("under churn (%v straggler)", slow), churnPoint, refPoint))

	if i := bench.DiffFingerprints(refFPs, churnFPs); i >= 0 {
		return fmt.Errorf("query %d differs between the churned engine and the in-process reference", i)
	}
	var tasks strings.Builder
	counters.printTasks(&tasks)
	fmt.Printf("exec: tasks%s\n", tasks.String())
	fmt.Printf("churn: %d lost, %d joined, %d drained, %d quarantined; speculation: %d launched, %d won, %d wasted\n",
		counters.get(spq.CounterExecWorkersLost),
		counters.get(spq.CounterExecWorkersJoined),
		counters.get(spq.CounterExecWorkersDrained),
		counters.get(spq.CounterExecWorkersQuarantined),
		counters.get(spq.CounterExecSpecLaunched),
		counters.get(spq.CounterExecSpecWon),
		counters.get(spq.CounterExecSpecWasted))
	if counters.get(spq.CounterExecWorkersJoined) == 0 {
		return fmt.Errorf("scheduled join never fired")
	}
	if counters.get(spq.CounterExecWorkersDrained) == 0 {
		return fmt.Errorf("scheduled drain never fired")
	}
	if counters.get(spq.CounterExecSpecWon) == 0 {
		return fmt.Errorf("no speculative win against a %v straggler", slow)
	}
	if counters.get(spq.CounterExecTasksPrefix+"joiner") == 0 {
		return fmt.Errorf("joined worker executed no tasks")
	}
	fmt.Println("results: churned engine identical to in-process, query by query")
	return nil
}
