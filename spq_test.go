package spq

import (
	"math"
	"reflect"
	"strings"
	"sync"
	"testing"
)

// loadPaperExample fills an engine with the dataset of Example 1 / Table 2.
func loadPaperExample(t *testing.T, cfg Config) *Engine {
	t.Helper()
	e := NewEngine(cfg)
	err := e.AddData(
		DataObject{ID: 1, X: 4.6, Y: 4.8},
		DataObject{ID: 2, X: 7.5, Y: 1.7},
		DataObject{ID: 3, X: 8.9, Y: 5.2},
		DataObject{ID: 4, X: 1.8, Y: 1.8},
		DataObject{ID: 5, X: 1.9, Y: 9.0},
	)
	if err != nil {
		t.Fatal(err)
	}
	err = e.AddFeature(
		Feature{ID: 101, X: 2.8, Y: 1.2, Keywords: []string{"italian", "gourmet"}},
		Feature{ID: 102, X: 5.0, Y: 3.8, Keywords: []string{"chinese", "cheap"}},
		Feature{ID: 103, X: 8.7, Y: 1.9, Keywords: []string{"sushi", "wine"}},
		Feature{ID: 104, X: 3.8, Y: 5.5, Keywords: []string{"italian"}},
		Feature{ID: 105, X: 5.2, Y: 5.1, Keywords: []string{"mexican", "exotic"}},
		Feature{ID: 106, X: 7.4, Y: 5.4, Keywords: []string{"greek", "traditional"}},
		Feature{ID: 107, X: 3.0, Y: 8.1, Keywords: []string{"italian", "spaghetti"}},
		Feature{ID: 108, X: 9.5, Y: 7.0, Keywords: []string{"indian"}},
	)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestQuickstartPaperExample(t *testing.T) {
	for _, storage := range []Storage{StorageDFS, StorageMemory} {
		for _, alg := range Algorithms() {
			e := loadPaperExample(t, Config{Storage: storage, Nodes: 4, BlockSize: 64})
			res, err := e.Query(
				Query{K: 1, Radius: 1.5, Keywords: []string{"italian"}},
				WithAlgorithm(alg), WithGrid(4), WithBounds(0, 0, 10, 10),
			)
			if err != nil {
				t.Fatalf("storage %d %v: %v", storage, alg, err)
			}
			if len(res) != 1 || res[0].ID != 1 || res[0].Score != 1 {
				t.Errorf("storage %d %v: top-1 = %+v, want p1 score 1", storage, alg, res)
			}
		}
	}
}

func TestQueryTop3(t *testing.T) {
	e := loadPaperExample(t, Config{})
	res, err := e.Query(Query{K: 3, Radius: 1.5, Keywords: []string{"italian"}}, WithGrid(4))
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 {
		t.Fatalf("got %d results: %+v", len(res), res)
	}
	wantIDs := []uint64{1, 4, 5}
	wantScores := []float64{1, 0.5, 0.5}
	for i := range res {
		if res[i].ID != wantIDs[i] || math.Abs(res[i].Score-wantScores[i]) > 1e-12 {
			t.Errorf("res[%d] = %+v, want id %d score %g", i, res[i], wantIDs[i], wantScores[i])
		}
	}
	// Result coordinates round-trip.
	if res[0].X != 4.6 || res[0].Y != 4.8 {
		t.Errorf("p1 location = (%g,%g)", res[0].X, res[0].Y)
	}
}

func TestQueryReportMetrics(t *testing.T) {
	e := loadPaperExample(t, Config{})
	rep, err := e.QueryReport(Query{K: 2, Radius: 1.5, Keywords: []string{"italian"}},
		WithAlgorithm(PSPQ), WithGrid(4))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Algorithm != PSPQ {
		t.Errorf("algorithm = %v", rep.Algorithm)
	}
	if rep.TotalMillis <= 0 {
		t.Errorf("total duration = %v", rep.TotalMillis)
	}
	if rep.Counters["map.records.in"] != 13 {
		t.Errorf("map.records.in = %d, want 13", rep.Counters["map.records.in"])
	}
	// 5 features share no keyword with the query and must be pruned.
	if rep.Counters["spq.map.features.pruned"] != 5 {
		t.Errorf("pruned = %d, want 5", rep.Counters["spq.map.features.pruned"])
	}
}

func TestEngineValidation(t *testing.T) {
	e := NewEngine(Config{})
	if _, err := e.Query(Query{K: 1, Radius: 1, Keywords: []string{"x"}}); err == nil {
		t.Error("query on empty engine succeeded")
	}
	if err := e.AddData(DataObject{ID: 1, X: 0, Y: 0}); err != nil {
		t.Fatal(err)
	}
	if err := e.AddFeature(Feature{ID: 2, X: 1, Y: 1, Keywords: []string{"a"}}); err != nil {
		t.Fatal(err)
	}
	bad := []Query{
		{K: 0, Radius: 1, Keywords: []string{"a"}},
		{K: 1, Radius: -1, Keywords: []string{"a"}},
		{K: 1, Radius: 1},
	}
	for _, q := range bad {
		if _, err := e.Query(q); err == nil {
			t.Errorf("invalid query %+v accepted", q)
		}
	}
	if _, err := e.Query(Query{K: 1, Radius: 1, Keywords: []string{"a"}}, WithGrid(-1)); err == nil {
		t.Error("negative grid accepted")
	}
}

func TestSealThenAppend(t *testing.T) {
	e := loadPaperExample(t, Config{})
	if err := e.Seal(); err != nil {
		t.Fatal(err)
	}
	if err := e.Seal(); err != nil {
		t.Errorf("second Seal = %v, want nil (idempotent)", err)
	}
	gen := e.Generation()
	// Loading after Seal appends into the in-memory delta: the records are
	// visible to the next query, no rebuild required.
	if err := e.AddData(DataObject{ID: 99, X: 2.9, Y: 1.1}); err != nil {
		t.Errorf("AddData after Seal = %v, want append", err)
	}
	if err := e.AddFeature(Feature{ID: 99, X: 2.9, Y: 1.15, Keywords: []string{"zanzibari"}}); err != nil {
		t.Errorf("AddFeature after Seal = %v, want append", err)
	}
	if n := e.DeltaLen(); n != 2 {
		t.Errorf("DeltaLen = %d, want 2", n)
	}
	if g := e.Generation(); g <= gen {
		t.Errorf("generation %d after appends, want > %d", g, gen)
	}
	// Duplicate-id validation spans the sealed base and the delta.
	if err := e.AddData(DataObject{ID: 1, X: 0, Y: 0}); err == nil {
		t.Error("sealed-base data id re-accepted after seal")
	}
	if err := e.AddData(DataObject{ID: 99, X: 0, Y: 0}); err == nil {
		t.Error("delta data id re-accepted")
	}
	res, err := e.Query(Query{K: 1, Radius: 0.5, Keywords: []string{"zanzibari"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].ID != 99 {
		t.Fatalf("query after append = %v, want appended object 99", res)
	}
}

func TestLenAndBounds(t *testing.T) {
	e := loadPaperExample(t, Config{})
	nd, nf := e.Len()
	if nd != 5 || nf != 8 {
		t.Errorf("Len = %d, %d", nd, nf)
	}
	minX, minY, maxX, maxY := e.Bounds()
	if minX != 1.8 || minY != 1.2 || maxX != 9.5 || maxY != 9.0 {
		t.Errorf("Bounds = %g %g %g %g", minX, minY, maxX, maxY)
	}
}

func TestDegenerateBounds(t *testing.T) {
	// All objects on one vertical line: the engine must pad the bounds
	// rather than panic on a zero-width grid.
	e := NewEngine(Config{Storage: StorageMemory})
	e.AddData(DataObject{ID: 1, X: 5, Y: 1}, DataObject{ID: 2, X: 5, Y: 9})
	e.AddFeature(Feature{ID: 3, X: 5, Y: 1.2, Keywords: []string{"a"}})
	res, err := e.Query(Query{K: 1, Radius: 0.5, Keywords: []string{"a"}}, WithGrid(4))
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].ID != 1 {
		t.Errorf("res = %+v", res)
	}
}

func TestLoadSynthetic(t *testing.T) {
	for _, name := range []string{"uniform", "clustered", "flickr", "twitter"} {
		e := NewEngine(Config{Storage: StorageMemory})
		if err := e.LoadSynthetic(name, 400); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		nd, nf := e.Len()
		if nd != 200 || nf != 200 {
			t.Fatalf("%s: Len = %d, %d", name, nd, nf)
		}
		kws := e.FrequentKeywords(3)
		if len(kws) != 3 {
			t.Fatalf("%s: FrequentKeywords = %v", name, kws)
		}
		res, err := e.Query(Query{K: 5, Radius: 0.1, Keywords: kws}, WithGrid(8))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(res) == 0 {
			t.Errorf("%s: no results for frequent keywords", name)
		}
		for i := 1; i < len(res); i++ {
			if res[i].Score > res[i-1].Score {
				t.Errorf("%s: results not sorted: %+v", name, res)
			}
		}
	}
	if err := NewEngine(Config{}).LoadSynthetic("nope", 10); err == nil {
		t.Error("unknown dataset accepted")
	}
}

// All three algorithms must agree on synthetic data end to end through the
// public API and the DFS storage path.
func TestAlgorithmsAgreeViaPublicAPI(t *testing.T) {
	build := func() *Engine {
		e := NewEngine(Config{Nodes: 4, BlockSize: 4 << 10, Seed: 5})
		if err := e.LoadSynthetic("uniform", 600); err != nil {
			t.Fatal(err)
		}
		return e
	}
	var first []Result
	for i, alg := range Algorithms() {
		e := build()
		kws := e.FrequentKeywords(2)
		res, err := e.Query(Query{K: 10, Radius: 0.08, Keywords: kws},
			WithAlgorithm(alg), WithGrid(10))
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if i == 0 {
			first = res
			continue
		}
		if len(res) != len(first) {
			t.Fatalf("%v: %d results vs %d", alg, len(res), len(first))
		}
		for j := range res {
			if math.Abs(res[j].Score-first[j].Score) > 1e-12 {
				t.Fatalf("%v: score[%d] = %v vs %v", alg, j, res[j].Score, first[j].Score)
			}
		}
	}
}

func TestWithSpillSameResults(t *testing.T) {
	e1 := NewEngine(Config{Storage: StorageMemory})
	e2 := NewEngine(Config{Storage: StorageMemory})
	for _, e := range []*Engine{e1, e2} {
		if err := e.LoadSynthetic("uniform", 500); err != nil {
			t.Fatal(err)
		}
	}
	kws := e1.FrequentKeywords(2)
	q := Query{K: 5, Radius: 0.1, Keywords: kws}
	a, err := e1.Query(q, WithGrid(6))
	if err != nil {
		t.Fatal(err)
	}
	b, err := e2.Query(q, WithGrid(6), WithSpill(100))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(scoresOf(a), scoresOf(b)) {
		t.Errorf("spill changed scores: %v vs %v", scoresOf(a), scoresOf(b))
	}
}

func scoresOf(rs []Result) []float64 {
	out := make([]float64, len(rs))
	for i, r := range rs {
		out[i] = r.Score
	}
	return out
}

func TestWithReducers(t *testing.T) {
	e := loadPaperExample(t, Config{Storage: StorageMemory})
	res, err := e.Query(Query{K: 1, Radius: 1.5, Keywords: []string{"italian"}},
		WithGrid(4), WithReducers(3))
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].ID != 1 {
		t.Errorf("res = %+v", res)
	}
}

func TestFrequentKeywordsOrder(t *testing.T) {
	e := NewEngine(Config{})
	e.AddFeature(
		Feature{ID: 1, Keywords: []string{"common", "rare"}},
		Feature{ID: 2, Keywords: []string{"common"}},
		Feature{ID: 3, Keywords: []string{"common", "mid"}},
		Feature{ID: 4, Keywords: []string{"mid"}},
	)
	got := e.FrequentKeywords(10)
	want := []string{"common", "mid", "rare"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Errorf("FrequentKeywords = %v, want %v", got, want)
	}
}

func TestScoringModesViaPublicAPI(t *testing.T) {
	e := NewEngine(Config{Storage: StorageMemory})
	e.AddData(DataObject{ID: 1, X: 0, Y: 0})
	e.AddFeature(
		Feature{ID: 10, X: 0.9, Y: 0, Keywords: []string{"a"}},
		Feature{ID: 11, X: 0.1, Y: 0, Keywords: []string{"a", "b", "c", "d"}},
	)
	// Range: far perfect match wins with 1.0.
	res, err := e.Query(Query{K: 1, Radius: 1, Keywords: []string{"a"}},
		WithAlgorithm(PSPQ), WithGrid(2))
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Score != 1 {
		t.Errorf("range score = %v", res[0].Score)
	}
	// Nearest: the close weak feature (Jaccard 1/4) defines the score.
	res, err = e.Query(Query{K: 1, Radius: 1, Keywords: []string{"a"}, Mode: ScoreNearest},
		WithAlgorithm(PSPQ), WithGrid(2))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res[0].Score-0.25) > 1e-12 {
		t.Errorf("nearest score = %v, want 0.25", res[0].Score)
	}
	// Influence decays with distance; score strictly between the two.
	res, err = e.Query(Query{K: 1, Radius: 1, Keywords: []string{"a"}, Mode: ScoreInfluence},
		WithGrid(2))
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Score <= 0.25 || res[0].Score >= 1 {
		t.Errorf("influence score = %v", res[0].Score)
	}
	// Nearest + early termination is rejected.
	if _, err := e.Query(Query{K: 1, Radius: 1, Keywords: []string{"a"}, Mode: ScoreNearest},
		WithAlgorithm(ESPQSco), WithGrid(2)); err == nil {
		t.Error("nearest mode accepted by eSPQsco")
	}
}

func TestBinaryStorageMatchesText(t *testing.T) {
	build := func(st Storage) []Result {
		e := NewEngine(Config{Storage: st, Nodes: 4, BlockSize: 2 << 10, Seed: 8})
		if err := e.LoadSynthetic("uniform", 800); err != nil {
			t.Fatal(err)
		}
		kws := e.FrequentKeywords(2)
		res, err := e.Query(Query{K: 8, Radius: 0.06, Keywords: kws}, WithGrid(6))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	text := build(StorageDFS)
	bin := build(StorageDFSBinary)
	if !reflect.DeepEqual(scoresOf(text), scoresOf(bin)) {
		t.Errorf("binary storage scores differ: %v vs %v", scoresOf(text), scoresOf(bin))
	}
}

// Concurrent queries on a sealed engine must be safe and consistent.
func TestConcurrentQueries(t *testing.T) {
	e := loadPaperExample(t, Config{})
	if err := e.Seal(); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			res, err := e.Query(Query{K: 1, Radius: 1.5, Keywords: []string{"italian"}},
				WithAlgorithm(Algorithms()[g%3]), WithGrid(4))
			if err != nil {
				errs[g] = err
				return
			}
			if len(res) != 1 || res[0].ID != 1 {
				errs[g] = errConcurrent
			}
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Errorf("goroutine %d: %v", g, err)
		}
	}
}

var errConcurrent = errWrongResult{}

type errWrongResult struct{}

func (errWrongResult) Error() string { return "wrong concurrent result" }
